"""Batched top-k recommendation engine.

The training side of the repo produces a checkpointed encoder; this
module turns it into something that can serve traffic:

* **Precomputed item matrix** — for encoders exposing
  ``item_embedding_matrix`` (SASRec, CL4SRec, GRU4Rec, BERT4Rec) the
  ``(num_items + 1, d)`` scoring matrix is materialized once at
  construction; each request then costs one dense matvec instead of a
  walk through the embedding table.
* **Micro-batched encoding** — user representations are computed in
  batches of ``max_batch_size`` sequences; :meth:`submit` coalesces
  individual requests into those batches through a bounded queue.
* **Representation cache** — an LRU keyed by the exact item-id
  sequence; repeat visitors skip the Transformer forward entirely.
* **Partial-sort top-k** — selection goes through the shared
  :func:`repro.eval.topk.top_k_indices`, so served lists match the
  evaluation protocol bit-for-bit (ties-free inputs).
* **Metrics** — every stage is timed into
  :class:`repro.serve.metrics.ServingMetrics`.

Models that only expose ``score_sequences`` (e.g. SR-GNN) are served
through a fallback backend: no precomputed matrix, the cache then holds
full score rows instead of representations.
"""

from __future__ import annotations

import os
from collections import OrderedDict

import numpy as np

from repro.data.preprocessing import SequenceDataset
from repro.eval.topk import top_k_indices
from repro.nn.serialization import CheckpointError
from repro.serve.metrics import ServingMetrics
from repro.serve.requests import Recommendation, RecRequest, RequestError

_NEG_INF = -np.inf


class EngineOverloaded(RuntimeError):
    """The bounded request queue is full; shed load or flush first."""


def sequence_key(sequence: np.ndarray) -> bytes:
    """Exact cache key for an item-id sequence."""
    return np.asarray(sequence, dtype=np.int64).tobytes()


class LRUCache:
    """A dict with least-recently-used eviction (maxsize bounded)."""

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict[bytes, np.ndarray] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: bytes) -> bool:
        return key in self._data

    def get(self, key: bytes) -> np.ndarray | None:
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def put(self, key: bytes, value: np.ndarray) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()


class RecommendationEngine:
    """Serve top-k recommendations from a fitted (or checkpointed) model.

    Parameters
    ----------
    model:
        A sequential recommender exposing either the representation API
        (``encode_sequences`` + ``item_embedding_matrix``) or, as a
        fallback, ``score_sequences``.
    dataset:
        Supplies interaction histories for user-id requests and the
        catalogue size.
    max_batch_size:
        Micro-batch size for encoding; also the auto-flush threshold of
        the coalescing queue.
    cache_size:
        LRU capacity (number of distinct sequences) of the
        representation cache.
    max_queue:
        Bound on queued-but-unfetched requests; :meth:`submit` raises
        :class:`EngineOverloaded` beyond it.
    split:
        Which history to serve user-id requests from (mirrors the
        evaluation protocol's ``split`` semantics; default ``"test"``,
        i.e. the full known history).
    metrics:
        Optionally share a :class:`ServingMetrics` across engines.
    """

    def __init__(
        self,
        model,
        dataset: SequenceDataset,
        max_batch_size: int = 256,
        cache_size: int = 4096,
        max_queue: int = 8192,
        split: str = "test",
        metrics: ServingMetrics | None = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be positive, got {max_batch_size}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be positive, got {max_queue}")
        self.model = model
        self.dataset = dataset
        self.max_batch_size = max_batch_size
        self.max_queue = max_queue
        self.split = split
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self.cache = LRUCache(cache_size)

        has_representation_api = hasattr(model, "encode_sequences") and hasattr(
            model, "item_embedding_matrix"
        )
        if has_representation_api:
            self._item_matrix = np.ascontiguousarray(
                model.item_embedding_matrix(dataset.num_items)
            )
        elif hasattr(model, "score_sequences"):
            self._item_matrix = None  # fallback: cache full score rows
        else:
            raise TypeError(
                f"{type(model).__name__} exposes neither the representation "
                f"API (encode_sequences + item_embedding_matrix) nor "
                f"score_sequences; it cannot be served"
            )

        self._queue: list[RecRequest] = []
        self._completed: list[Recommendation] = []

        if hasattr(model, "eval"):
            model.eval()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(
        cls,
        checkpoint: str | os.PathLike,
        model,
        dataset: SequenceDataset,
        dtype=None,
        **engine_kwargs,
    ) -> "RecommendationEngine":
        """Load weights from a PR-1 checkpoint and wrap them in an engine.

        ``checkpoint`` is either a :class:`~repro.runtime.checkpointing.
        CheckpointManager` directory (the newest *valid* archive is
        used, skipping corrupt ones) or a single ``.npz`` archive
        written by ``repro.nn.checkpoint.save_checkpoint`` /
        ``repro.runtime``.  ``model`` must be built with the same
        configuration the checkpoint was trained with (use
        :func:`repro.models.registry.build_model`); a mismatch raises
        :class:`~repro.nn.serialization.CheckpointError`.

        ``dtype`` selects the serving precision ("float32" roughly
        doubles scoring throughput; see docs/PERFORMANCE.md).  When
        omitted, the model adopts the checkpoint's own dtype, so a
        float32-trained checkpoint serves in float32 without flags.
        """
        checkpoint = os.fspath(checkpoint)
        if os.path.isdir(checkpoint):
            from repro.runtime.checkpointing import CheckpointManager

            recovered = CheckpointManager(checkpoint).load_latest_valid()
            if recovered is None:
                raise CheckpointError(
                    f"{checkpoint}: no valid checkpoint archive found"
                )
            __, payload = recovered
        else:
            from repro.runtime.checkpointing import read_archive

            payload = read_archive(checkpoint)
        state = {
            name[len("model/") :]: values
            for name, values in payload.items()
            if name.startswith("model/")
        }
        if not state:
            # A bare state_dict archive (no section prefixes).
            state = {
                name: values
                for name, values in payload.items()
                if "/" not in name
            }
        if not state:
            raise CheckpointError(
                f"{checkpoint}: archive holds no model parameters"
            )
        if dtype is None and hasattr(model, "to_dtype"):
            # Adopt the checkpoint's precision: if every stored float
            # array is float32 the run was trained in float32 — keep
            # serving it that way rather than silently upcasting.
            stored = {
                np.asarray(values).dtype
                for values in state.values()
                if np.issubdtype(np.asarray(values).dtype, np.floating)
            }
            if stored == {np.dtype(np.float32)}:
                dtype = np.float32
        if dtype is not None and hasattr(model, "to_dtype"):
            model.to_dtype(dtype)
        try:
            model.load_state_dict(state)
        except (KeyError, ValueError, IndexError) as error:
            raise CheckpointError(
                f"{checkpoint}: checkpoint does not fit this model "
                f"(was it trained with a different configuration?): {error}"
            ) from error
        return cls(model, dataset, **engine_kwargs)

    # ------------------------------------------------------------------
    # One-shot and batched serving
    # ------------------------------------------------------------------
    def recommend(
        self,
        user: int | None = None,
        sequence=None,
        k: int = 10,
        exclude_seen: bool = True,
    ) -> Recommendation:
        """Serve a single request (convenience over :meth:`recommend_batch`)."""
        request = RecRequest(
            user=user,
            sequence=tuple(sequence) if sequence is not None else None,
            k=k,
            exclude_seen=exclude_seen,
        )
        return self.recommend_batch([request])[0]

    def recommend_batch(self, requests: list[RecRequest]) -> list[Recommendation]:
        """Serve many requests at once: dedupe, encode, score, select."""
        if not requests:
            return []
        with self.metrics.time_stage("total"):
            with self.metrics.time_stage("resolve"):
                sequences, exclusions = self._resolve(requests)
            keys = [sequence_key(seq) for seq in sequences]
            rows, cached_flags = self._compute_rows(keys, sequences)
            with self.metrics.time_stage("topk"):
                results = self._select_batch(requests, rows, exclusions, cached_flags)
        self.metrics.increment("requests", len(requests))
        self.metrics.increment("batches")
        return results

    # ------------------------------------------------------------------
    # Request coalescing (bounded queue)
    # ------------------------------------------------------------------
    def submit(self, request: RecRequest) -> None:
        """Queue one request; auto-flushes a micro-batch when full.

        Results accumulate in submission order until :meth:`flush`.
        Raises :class:`EngineOverloaded` when ``max_queue`` requests are
        pending collection.
        """
        if len(self._queue) + len(self._completed) >= self.max_queue:
            raise EngineOverloaded(
                f"queue full ({self.max_queue} pending); call flush()"
            )
        self._queue.append(request)
        if len(self._queue) >= self.max_batch_size:
            self._process_queue()

    def flush(self) -> list[Recommendation]:
        """Process queued requests and return all pending results in order."""
        self._process_queue()
        completed, self._completed = self._completed, []
        return completed

    @property
    def pending(self) -> int:
        """Requests submitted but not yet collected via :meth:`flush`."""
        return len(self._queue) + len(self._completed)

    def _process_queue(self) -> None:
        if self._queue:
            queued, self._queue = self._queue, []
            self._completed.extend(self.recommend_batch(queued))

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def warm(self, users: np.ndarray) -> int:
        """Pre-populate the representation cache for ``users``.

        Returns the number of sequences actually encoded (cache misses).
        """
        users = np.asarray(users)
        sequences = [
            np.asarray(self.dataset.full_sequence(int(u), split=self.split))
            for u in users
        ]
        keys = [sequence_key(seq) for seq in sequences]
        before = self.metrics.counters.get("sequences_encoded", 0)
        self._compute_rows(keys, sequences)
        return self.metrics.counters.get("sequences_encoded", 0) - before

    def invalidate_cache(self) -> None:
        """Drop every cached representation (after a weight update)."""
        self.cache.clear()

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------
    def _resolve(
        self, requests: list[RecRequest]
    ) -> tuple[list[np.ndarray], list[np.ndarray | None]]:
        """Request → (history sequence, excluded item ids or None)."""
        sequences: list[np.ndarray] = []
        exclusions: list[np.ndarray | None] = []
        for request in requests:
            if request.user is not None:
                user = int(request.user)
                if not 0 <= user < self.dataset.num_users:
                    raise RequestError(
                        f"user {user} out of range [0, {self.dataset.num_users})"
                    )
                sequence = np.asarray(
                    self.dataset.full_sequence(user, split=self.split)
                )
                excluded = (
                    self.dataset.seen_items(user) if request.exclude_seen else None
                )
            else:
                sequence = np.asarray(request.sequence, dtype=np.int64)
                if sequence.min() < 0 or sequence.max() > self.dataset.num_items:
                    raise RequestError(
                        f"sequence item ids must be in [0, "
                        f"{self.dataset.num_items}]"
                    )
                excluded = np.unique(sequence) if request.exclude_seen else None
            sequences.append(sequence)
            exclusions.append(excluded)
        return sequences, exclusions

    def _compute_rows(
        self, keys: list[bytes], sequences: list[np.ndarray]
    ) -> tuple[list[np.ndarray], list[bool]]:
        """Per-request cached arrays (representations or score rows).

        Deduplicates within the batch, encodes only cache misses in
        micro-batches, and records hit/miss counters per request.
        """
        cached_flags = [False] * len(keys)
        misses: dict[bytes, np.ndarray] = {}
        for i, key in enumerate(keys):
            if key in self.cache:
                cached_flags[i] = True
            elif key in misses:
                cached_flags[i] = True  # coalesced with an earlier request
                self.metrics.increment("coalesced_requests")
            else:
                misses[key] = sequences[i]
            self.metrics.record_cache(cached_flags[i])

        if misses:
            miss_keys = list(misses)
            miss_sequences = list(misses.values())
            with self.metrics.time_stage("encode"):
                for start in range(0, len(miss_sequences), self.max_batch_size):
                    chunk = miss_sequences[start : start + self.max_batch_size]
                    encoded = self._encode(chunk)
                    for offset, row in enumerate(encoded):
                        self.cache.put(miss_keys[start + offset], row)
            self.metrics.increment("sequences_encoded", len(miss_sequences))

        rows: list[np.ndarray] = []
        if self._item_matrix is not None:
            representations = np.stack([self.cache.get(key) for key in keys])
            with self.metrics.time_stage("score"):
                scored = representations @ self._item_matrix.T
            self.metrics.increment("items_scored", scored.size)
            rows = list(scored)
        else:
            rows = [self.cache.get(key) for key in keys]
            self.metrics.increment(
                "items_scored", sum(len(row) for row in rows)
            )
        return rows, cached_flags

    def _encode(self, sequences: list[np.ndarray]) -> np.ndarray:
        """One micro-batch through the model."""
        if self._item_matrix is not None:
            return np.asarray(self.model.encode_sequences(sequences))
        return np.asarray(
            self.model.score_sequences(sequences, self.dataset.num_items)
        )

    def _select_batch(
        self,
        requests: list[RecRequest],
        rows: list[np.ndarray],
        exclusions: list[np.ndarray | None],
        cached_flags: list[bool],
    ) -> list[Recommendation]:
        """Mask ineligible items and partial-sort top-k, batched."""
        scores = np.array(rows, dtype=np.float64)
        scores[:, 0] = _NEG_INF  # padding id is never a candidate
        row_idx = np.concatenate(
            [np.full(len(e), i) for i, e in enumerate(exclusions) if e is not None]
            or [np.empty(0, dtype=np.int64)]
        )
        col_idx = np.concatenate(
            [e for e in exclusions if e is not None]
            or [np.empty(0, dtype=np.int64)]
        )
        scores[row_idx.astype(np.int64), col_idx.astype(np.int64)] = _NEG_INF
        max_k = min(max(r.k for r in requests), scores.shape[1])
        top = top_k_indices(scores, max_k)
        results = []
        for i, request in enumerate(requests):
            row_top = top[i][np.isfinite(scores[i, top[i]])][: request.k]
            results.append(
                Recommendation(
                    items=row_top,
                    scores=scores[i, row_top],
                    request=request,
                    cached=cached_flags[i],
                )
            )
        return results
