"""Stable user-hash sharding for the multi-worker serving frontend.

Every scoring worker owns one shard of the representation cache, so a
given user (or live session) must always route to the same worker —
otherwise repeat visitors never hit their cached representation.  The
assignment therefore has to be:

* **stable** — a pure function of the request identity and the shard
  count, identical across processes, restarts and platforms (no
  ``hash()``, whose string/bytes variant is salted per process);
* **total** — every request maps to exactly one shard, so partitioning
  a batch preserves it exactly;
* **balanced** — close to uniform over shards even when the *traffic*
  is heavily Zipf-skewed, because the hash mixes user ids before the
  modulo (property-tested in ``tests/serve/test_shard.py``).

User-id requests shard on the user id; raw-sequence requests shard on
the exact item-id sequence (the same bytes that key the representation
cache, :func:`repro.serve.engine.sequence_key`), so a live session
sticks to one worker's cache for its whole lifetime.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = [
    "partition_requests",
    "shard_for_request",
    "shard_for_sequence",
    "shard_for_user",
    "stable_hash",
]


def stable_hash(data: bytes) -> int:
    """A process-stable 64-bit hash of ``data`` (blake2b, fixed salt)."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "little"
    )


def _check_shards(num_shards: int) -> None:
    if num_shards < 1:
        raise ValueError(f"num_shards must be positive, got {num_shards}")


def shard_for_user(user: int, num_shards: int) -> int:
    """The shard owning dataset user ``user``."""
    _check_shards(num_shards)
    return stable_hash(b"user:%d" % int(user)) % num_shards


def shard_for_sequence(sequence, num_shards: int) -> int:
    """The shard owning a raw item-id ``sequence`` (exact-bytes key)."""
    _check_shards(num_shards)
    key = np.asarray(sequence, dtype=np.int64).tobytes()
    return stable_hash(b"seq:" + key) % num_shards


def shard_for_request(request, num_shards: int) -> int:
    """The shard a :class:`~repro.serve.requests.RecRequest` routes to."""
    if request.user is not None:
        return shard_for_user(request.user, num_shards)
    return shard_for_sequence(request.sequence, num_shards)


def partition_requests(requests, num_shards: int) -> dict[int, list[int]]:
    """Partition a batch into ``{shard: [request indices]}``.

    Indices preserve the caller's order within each shard, so merging
    per-shard responses back by position reconstructs the original
    batch exactly (total-preserving; property-tested).
    """
    _check_shards(num_shards)
    by_shard: dict[int, list[int]] = {}
    for i, request in enumerate(requests):
        by_shard.setdefault(shard_for_request(request, num_shards), []).append(i)
    return by_shard
