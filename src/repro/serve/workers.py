"""Multi-process sharded serving: N scoring workers over shared memory.

Scale-out layer for :class:`repro.serve.engine.RecommendationEngine`.
One *template* engine (built exactly like the single-process path) is
wrapped by :class:`ShardedEngine`, which

* publishes the model weights and the item-embedding matrix once into a
  read-only ``multiprocessing.shared_memory`` segment
  (:class:`SharedModelState`) — workers map it zero-copy, so N workers
  cost one copy of the weights, not N;
* forks N scoring workers, each running its **own**
  :class:`~repro.serve.engine.RecommendationEngine` whose parameters
  and retrieval index are views into that segment, with a private
  per-shard LRU representation cache and its own resilience policy and
  metrics registry — no cross-process locks anywhere on the hot path;
* routes every request to a worker by the stable user-hash sharding in
  :mod:`repro.serve.shard` (so a returning user always hits the worker
  holding their cached representation), fans a batch out over pipes and
  merges the per-shard top-k responses back into request order.

``workers=0`` (the :class:`~repro.serve.config.ServeConfig` default)
never constructs this class, so the single-process path is replayed
bit-identically; with ``ExactIndex`` the sharded path returns the same
items and scores as well (property-tested in
``tests/serve/test_workers.py``) because scoring batches are padded to
a fixed length and therefore batch-composition independent.

Shared-memory lifecycle protocol (leak-free by construction): the
parent *creates* every segment and is the only process to ``unlink()``
it, exactly once; workers only ever *attach* and ``close()``.  Model
swaps publish a brand-new segment and retire the old one after every
worker acknowledged the switch — a segment is never written again once
workers can see it, so torn reads are impossible (worker views are
read-only ndarrays; a stray write raises instead of corrupting).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from contextlib import ExitStack
from multiprocessing.shared_memory import SharedMemory

import numpy as np

from repro.core.shm import SharedArrays, adopt_parameters, allocate_segment
from repro.retrieval import INDEX_KINDS
from repro.retrieval.exact import ExactIndex
from repro.serve.engine import EngineOverloaded, RecommendationEngine
from repro.serve.metrics import ServingMetrics
from repro.serve.requests import Recommendation, RecRequest, RequestError
from repro.serve.resilience import (
    REASON_BAD_REQUEST,
    REASON_DEADLINE,
    DeadlineExceeded,
)
from repro.serve.shard import partition_requests, shard_for_user

__all__ = [
    "MATRIX_KEY",
    "SharedModelState",
    "ShardedEngine",
]

#: Reserved entry name for the item-embedding matrix inside a shared
#: segment (model parameters use their ``state_dict`` names, which are
#: dotted identifiers and can never collide with the dunder form).
MATRIX_KEY = "__item_matrix__"

#: Reservoir samples each worker ships per histogram on a ``/metrics``
#: export; aggregates (count/total/max) stay exact regardless.
METRICS_SAMPLE_CAP = 4096


class SharedModelState(SharedArrays):
    """One read-only shared-memory segment holding arrays by name.

    A :class:`repro.core.shm.SharedArrays` (the create/attach/cleanup
    lifecycle lives there, shared with data-parallel training) plus the
    serving-specific pieces: a model-version ``generation`` stamp, the
    reserved item-matrix entry, and the weight/matrix split views.
    """

    def __init__(self, shm: SharedMemory, entries: dict, generation: int,
                 owner: bool) -> None:
        super().__init__(shm, entries, owner=owner, writeable=False)
        self.generation = int(generation)

    @classmethod
    def create(cls, arrays: dict[str, np.ndarray],
               generation: int) -> "SharedModelState":
        """Publish ``arrays`` into a fresh segment (the caller owns it)."""
        shm, entries = allocate_segment(arrays, name_prefix="repro-serve")
        return cls(shm, entries, generation, owner=True)

    def meta(self) -> dict:
        """Picklable attachment handle (segment name + layout)."""
        return {
            "name": self.shm.name,
            "entries": self.entries,
            "generation": self.generation,
        }

    @classmethod
    def attach(cls, meta: dict) -> "SharedModelState":
        """Map an existing segment created by another process."""
        shm = SharedMemory(name=meta["name"])
        return cls(shm, meta["entries"], meta["generation"], owner=False)

    @property
    def matrix(self) -> np.ndarray:
        """The read-only item-embedding matrix view."""
        return self.views[MATRIX_KEY]

    def weight_views(self) -> dict[str, np.ndarray]:
        """Parameter-name -> read-only view (the matrix excluded)."""
        return {
            name: view for name, view in self.views.items()
            if name != MATRIX_KEY
        }


#: Zero-copy parameter adoption (moved to :mod:`repro.core.shm`; the
#: name stays for the tests and chaos tooling that patch through it).
_adopt_shared_weights = adopt_parameters


def _build_worker_index(kind: str, params: dict, matrix: np.ndarray):
    """A worker-local index over the shared matrix view.

    ``ExactIndex.build`` keeps a contiguous view by reference, so the
    default retrieval path is fully zero-copy; approximate kinds rebuild
    their structures locally from the same hyperparameters (their
    training is seeded through ``params``, so workers agree).
    """
    if kind == "exact":
        return ExactIndex().build(matrix)
    return INDEX_KINDS[kind].from_kind(kind, **params).build(matrix)


def _result_payload(result: Recommendation) -> dict:
    """The picklable part of a Recommendation (the request stays local)."""
    return {
        "items": result.items,
        "scores": result.scores,
        "cached": result.cached,
        "degraded": result.degraded,
        "fallback": result.fallback,
        "error": result.error,
        "detail": result.detail,
        "model_version": result.model_version,
    }


def _worker_main(conn, spec: dict) -> None:
    """Scoring-worker entry point: build a private engine, serve commands.

    The worker attaches the shared segment, adopts weights and matrix
    zero-copy, then loops over pipe commands.  Engine-level request
    failures travel back inside result payloads (``on_error="report"``);
    only command-level faults use the ``("error", exc)`` reply.
    """
    try:
        shared = SharedModelState.attach(spec["shared"])
        model = spec["model"]
        _adopt_shared_weights(model, shared.weight_views())
        index = _build_worker_index(
            spec["index_kind"], spec["index_params"], shared.matrix
        )
        engine = RecommendationEngine(
            model,
            spec["dataset"],
            max_batch_size=spec["max_batch_size"],
            cache_size=spec["cache_size"],
            max_queue=spec["max_queue"],
            split=spec["split"],
            metrics=ServingMetrics(seed=spec["metrics_seed"]),
            resilience=spec["resilience"],
            faults=spec["faults"],
            index=index,
        )
        engine.model_version = spec["model_version"]
        engine.checkpoint_path = spec["checkpoint_path"]
        engine.metrics.set_gauge("model_version", engine.model_version)
    except BaseException as error:  # surface startup failures to the parent
        _send_error(conn, error)
        conn.close()
        return

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        command = message[0]
        try:
            if command == "recommend":
                __, requests, started = message
                results = engine.recommend_batch(
                    requests, started=started, on_error="report"
                )
                conn.send(("ok", [_result_payload(r) for r in results]))
            elif command == "swap":
                __, meta, checkpoint, version, step = message
                new_state = SharedModelState.attach(meta)
                _adopt_shared_weights(model, new_state.weight_views())
                engine.index = engine.index.rebuild(new_state.matrix)
                engine.invalidate_cache()
                engine.model_version = version
                engine.checkpoint_path = checkpoint
                # The frontend counts the swap (merged counters *add*,
                # so a per-worker increment would multiply one swap by
                # the worker count); workers only publish the gauge.
                engine.metrics.set_gauge("model_version", version)
                old, shared = shared, new_state
                old.close()
                conn.send(("ok", {"model_version": version, "step": step}))
            elif command == "metrics":
                conn.send(("ok", engine.metrics.state(sample_cap=message[1])))
            elif command == "invalidate":
                engine.invalidate_cache()
                conn.send(("ok", None))
            elif command == "warm":
                conn.send(("ok", engine.warm(np.asarray(message[1]))))
            elif command == "set_faults":
                engine.faults = message[1]
                conn.send(("ok", None))
            elif command == "stats":
                conn.send(("ok", {
                    "pid": os.getpid(),
                    "cache_entries": len(engine.cache),
                    "cache_size": engine.cache.maxsize,
                    "model_version": engine.model_version,
                    "generation": shared.generation,
                }))
            elif command == "shutdown":
                conn.send(("ok", None))
                break
            else:
                conn.send(("error", ValueError(f"unknown command {command!r}")))
        except BaseException as error:
            _send_error(conn, error)

    shared.close()
    conn.close()


def _send_error(conn, error: BaseException) -> None:
    """Ship an exception to the parent, degrading to a plain message."""
    try:
        conn.send(("error", error))
    except Exception:
        try:
            conn.send(("error", RuntimeError(
                f"{type(error).__name__}: {error}")))
        except Exception:
            pass


class _FrontendMetrics(ServingMetrics):
    """The frontend facade's registry merged live with every worker's.

    ``snapshot()`` (the ``/metrics`` payload) pulls each worker's raw
    registry state and merges it into a scratch registry together with
    the frontend's own counters and gauges, so repeated exports never
    double count and worker shutdown keeps the last observed state.
    """

    def __init__(self, engine: "ShardedEngine", seed: int = 0) -> None:
        super().__init__(seed=seed)
        self._engine = engine

    def snapshot(self) -> dict:
        snap = self.merged_snapshot(self._engine._worker_states())
        snap["workers"] = self._engine.worker_info()
        return snap


class ShardedEngine:
    """Fan requests out over N worker processes; merge top-k back.

    Drop-in for :class:`RecommendationEngine` as far as
    :class:`~repro.serve.server.RecommendationServer` and the CLI are
    concerned: ``recommend`` / ``recommend_batch`` / ``submit`` /
    ``flush`` / ``swap_model`` / ``warm`` / ``invalidate_cache`` /
    ``metrics`` / ``close`` all exist with the same semantics.  Unlike
    the single-process engine it is **thread-safe** (``thread_safe =
    True``): per-shard pipe locks serialize each worker's channel while
    different shards serve concurrently, so the HTTP server skips its
    global scoring lock and real parallelism reaches the workers.

    ``template`` is a fully built single-process engine; it contributes
    the weights, dataset, index hyperparameters, resilience config and
    fault injector, and keeps handling validation-heavy control work
    (``swap_model`` probes) while the workers do all scoring.
    """

    thread_safe = True

    def __init__(
        self,
        template: RecommendationEngine,
        workers: int,
        start_method: str | None = None,
        worker_cache_size: int | None = None,
        metrics_seed: int = 0,
        worker_timeout_s: float = 120.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if template.index is None:
            raise TypeError(
                "sharded serving needs the representation API (an item "
                "index); score_sequences-only models must serve with "
                "workers=0"
            )
        self._template = template
        self.workers = int(workers)
        self.worker_timeout_s = float(worker_timeout_s)
        self.metrics = _FrontendMetrics(self, seed=metrics_seed)
        self.metrics.touch("fanout_batches")
        self._swap_lock = threading.Lock()
        self._queue: list[RecRequest] = []
        self._completed: list[Recommendation] = []
        self._closed = False
        self._final_states: list[dict] = []

        context = multiprocessing.get_context(start_method or "fork")
        self.start_method = context.get_start_method()
        arrays = dict(template.model.state_dict())
        if MATRIX_KEY in arrays:
            raise ValueError(f"model state dict uses reserved key {MATRIX_KEY!r}")
        arrays[MATRIX_KEY] = template.index.matrix
        self._shared = SharedModelState.create(
            arrays, generation=template.model_version
        )

        # Memory parity with the single-process engine: the configured
        # cache budget is split across shards unless overridden.
        if worker_cache_size is None:
            worker_cache_size = max(1, template.cache.maxsize // workers)
        resilience = (
            template.policy.config if template.policy is not None else None
        )
        self._conns = []
        self._locks = [threading.Lock() for __ in range(workers)]
        self._procs = []
        try:
            for shard in range(workers):
                parent_conn, child_conn = context.Pipe()
                spec = {
                    "shared": self._shared.meta(),
                    "model": template.model,
                    "dataset": template.dataset,
                    "max_batch_size": template.max_batch_size,
                    "cache_size": worker_cache_size,
                    "max_queue": template.max_queue,
                    "split": template.split,
                    "metrics_seed": metrics_seed + shard + 1,
                    "resilience": resilience,
                    "faults": template.faults,
                    "index_kind": template.index.kind,
                    "index_params": template.index._artifact_params(),
                    "model_version": template.model_version,
                    "checkpoint_path": template.checkpoint_path,
                }
                process = context.Process(
                    target=_worker_main,
                    args=(child_conn, spec),
                    name=f"repro-scoring-worker-{shard}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(process)
            for shard in range(workers):  # startup handshake
                self._send(shard, ("stats",))
            for shard in range(workers):
                self._recv(shard)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _send(self, shard: int, message) -> None:
        """Send one command to ``shard``, surfacing worker death."""
        try:
            self._conns[shard].send(message)
        except (BrokenPipeError, OSError) as error:
            process = self._procs[shard] if shard < len(self._procs) else None
            exitcode = process.exitcode if process is not None else None
            raise RuntimeError(
                f"scoring worker {shard} died (exit code {exitcode})"
            ) from error

    def _recv(self, shard: int):
        """One reply off ``shard``'s pipe (raises worker-side errors)."""
        conn = self._conns[shard]
        deadline = time.monotonic() + self.worker_timeout_s
        while not conn.poll(0.05):
            process = self._procs[shard] if shard < len(self._procs) else None
            if process is not None and not process.is_alive():
                if conn.poll(0):  # drain a reply racing the exit
                    break
                raise RuntimeError(
                    f"scoring worker {shard} died "
                    f"(exit code {process.exitcode})"
                )
            if time.monotonic() >= deadline:
                raise RuntimeError(
                    f"scoring worker {shard} did not reply within "
                    f"{self.worker_timeout_s:g}s"
                )
        try:
            status, payload = conn.recv()
        except (EOFError, OSError) as error:
            raise RuntimeError(
                f"scoring worker {shard} exited unexpectedly"
            ) from error
        if status == "error":
            if isinstance(payload, BaseException):
                raise payload
            raise RuntimeError(str(payload))
        return payload

    def _hold(self, shards) -> ExitStack:
        """Acquire the given shard locks in sorted order (no deadlocks)."""
        stack = ExitStack()
        for shard in sorted(shards):
            stack.enter_context(self._locks[shard])
        return stack

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("the worker pool is closed")

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def recommend(
        self,
        user: int | None = None,
        sequence=None,
        k: int = 10,
        exclude_seen: bool = True,
        deadline_ms: float | None = None,
    ) -> Recommendation:
        """Serve a single request (convenience over :meth:`recommend_batch`)."""
        request = RecRequest(
            user=user,
            sequence=tuple(sequence) if sequence is not None else None,
            k=k,
            exclude_seen=exclude_seen,
            deadline_ms=deadline_ms,
        )
        return self.recommend_batch([request])[0]

    def recommend_batch(
        self,
        requests: list[RecRequest],
        started: float | None = None,
        on_error: str = "raise",
    ) -> list[Recommendation]:
        """Partition by user hash, fan out, merge back in request order.

        ``started`` transfers across processes untouched —
        ``time.monotonic`` is system-wide on Linux, so deadline budgets
        anchored at HTTP arrival time hold inside the workers too.
        Workers always score with ``on_error="report"``; for
        ``on_error="raise"`` the frontend re-raises the first reported
        failure in request order, matching the single-process contract.
        """
        if on_error not in ("raise", "report"):
            raise ValueError(
                f"on_error must be 'raise' or 'report', got {on_error!r}"
            )
        if not requests:
            return []
        self._check_open()
        if started is None:
            started = (
                self._template.policy.clock()
                if self._template.policy is not None
                else time.monotonic()
            )
        partition = partition_requests(requests, self.workers)
        results: list[Recommendation | None] = [None] * len(requests)
        with self.metrics.time_stage("fanout"):
            with self._hold(partition):
                shards = sorted(partition)
                for shard in shards:
                    self._send(shard, (
                        "recommend",
                        [requests[i] for i in partition[shard]],
                        started,
                    ))
                for shard in shards:
                    payloads = self._recv(shard)
                    for i, payload in zip(partition[shard], payloads):
                        results[i] = Recommendation(
                            request=requests[i], **payload
                        )
        self.metrics.increment("fanout_batches")
        if on_error == "raise":
            for result in results:
                if result.error == REASON_BAD_REQUEST:
                    raise RequestError(result.detail)
                if result.error == REASON_DEADLINE:
                    raise DeadlineExceeded(result.detail)
        return results

    # ------------------------------------------------------------------
    # Request coalescing (frontend-side queue, same contract as engine)
    # ------------------------------------------------------------------
    def submit(self, request: RecRequest) -> None:
        """Queue one request; auto-flushes a micro-batch when full."""
        if len(self._queue) + len(self._completed) >= self.max_queue:
            raise EngineOverloaded(
                f"queue full ({self.max_queue} pending); call flush()"
            )
        self._queue.append(request)
        if len(self._queue) >= self.max_batch_size:
            self._process_queue()

    def flush(self) -> list[Recommendation]:
        """Process queued requests and return all pending results in order."""
        self._process_queue()
        completed, self._completed = self._completed, []
        return completed

    @property
    def pending(self) -> int:
        """Requests submitted but not yet collected via :meth:`flush`."""
        return len(self._queue) + len(self._completed)

    def _process_queue(self) -> None:
        if self._queue:
            queued, self._queue = self._queue, []
            self._completed.extend(
                self.recommend_batch(queued, on_error="report")
            )

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def swap_model(self, checkpoint, probe: bool = True) -> dict:
        """Validate on the template, then publish to every worker.

        The template engine performs the full crash-safe swap first
        (checksum, state-dict fit, probe) — a bad checkpoint never
        reaches a worker.  On success a *new* shared segment is written,
        all shard locks are taken (quiescing traffic so no request
        spans the flip), every worker re-points its weights and index
        and acknowledges, and only then is the old segment retired.
        Workers therefore never serve a stale ``model_version`` after
        the swap returns.
        """
        self._check_open()
        with self._swap_lock:
            info = self._template.swap_model(checkpoint, probe=probe)
            arrays = dict(self._template.model.state_dict())
            arrays[MATRIX_KEY] = self._template.index.matrix
            new_shared = SharedModelState.create(
                arrays, generation=info["model_version"]
            )
            failures = []
            with self._hold(range(self.workers)):
                for shard in range(self.workers):
                    self._send(shard, (
                        "swap",
                        new_shared.meta(),
                        info["checkpoint"],
                        info["model_version"],
                        info["step"],
                    ))
                for shard in range(self.workers):
                    try:
                        self._recv(shard)
                    except Exception as error:
                        failures.append((shard, error))
            if failures:
                # The template already validated this checkpoint, so a
                # worker-side failure means a dead/wedged process; the
                # pool is no longer coherent and must be rebuilt.
                raise RuntimeError(
                    f"model swap failed on workers "
                    f"{[shard for shard, __ in failures]}: {failures[0][1]}"
                )
            old, self._shared = self._shared, new_shared
            old.close()
            old.unlink()
        self.metrics.increment("model_swaps")
        self.metrics.set_gauge("model_version", info["model_version"])
        return info

    def warm(self, users: np.ndarray) -> int:
        """Pre-populate each shard's cache for its own users."""
        self._check_open()
        by_shard: dict[int, list[int]] = {}
        for user in np.asarray(users).tolist():
            by_shard.setdefault(
                shard_for_user(int(user), self.workers), []
            ).append(int(user))
        encoded = 0
        for shard, shard_users in sorted(by_shard.items()):
            with self._locks[shard]:
                self._send(shard, ("warm", shard_users))
                encoded += self._recv(shard)
        return encoded

    def invalidate_cache(self) -> None:
        """Drop every shard's representation cache."""
        self._check_open()
        with self._hold(range(self.workers)):
            for shard in range(self.workers):
                self._send(shard, ("invalidate",))
            for shard in range(self.workers):
                self._recv(shard)

    def set_faults(self, faults) -> None:
        """Install a fault injector in every worker (chaos testing).

        Fork isolates worker memory, so mutating the template's
        injector after construction does not reach the workers; ship
        the configured injector explicitly instead.
        """
        self._check_open()
        self._template.faults = faults
        with self._hold(range(self.workers)):
            for shard in range(self.workers):
                self._send(shard, ("set_faults", faults))
            for shard in range(self.workers):
                self._recv(shard)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _worker_states(self) -> list[dict]:
        """Every worker's raw metrics state (last known once closed)."""
        if self._closed:
            return self._final_states
        states = []
        for shard in range(len(self._conns)):
            with self._locks[shard]:
                self._send(shard, ("metrics", METRICS_SAMPLE_CAP))
                states.append(self._recv(shard))
        return states

    def worker_info(self) -> dict:
        """Pool shape for ``/metrics`` and ``/health`` payloads."""
        return {
            "count": self.workers,
            "start_method": self.start_method,
            "pids": [process.pid for process in self._procs],
            "alive": sum(process.is_alive() for process in self._procs),
        }

    def worker_stats(self) -> list[dict]:
        """Per-worker cache/version stats (stress tests, debugging)."""
        self._check_open()
        stats = []
        for shard in range(self.workers):
            with self._locks[shard]:
                self._send(shard, ("stats",))
                stats.append(self._recv(shard))
        return stats

    # Delegated views of the template so the HTTP server, health checks
    # and the CLI treat both engine flavours uniformly.
    @property
    def model(self):
        return self._template.model

    @property
    def dataset(self):
        return self._template.dataset

    @property
    def index(self):
        return self._template.index

    @property
    def policy(self):
        return self._template.policy

    @property
    def faults(self):
        return self._template.faults

    @property
    def cache(self):
        return self._template.cache

    @property
    def max_batch_size(self) -> int:
        return self._template.max_batch_size

    @property
    def max_queue(self) -> int:
        return self._template.max_queue

    @property
    def split(self) -> str:
        return self._template.split

    @property
    def model_version(self) -> int:
        return self._template.model_version

    @property
    def checkpoint_path(self) -> str | None:
        return self._template.checkpoint_path

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self, timeout: float = 5.0) -> None:
        """Stop every worker and retire the shared segment (idempotent).

        Capture each worker's final metrics first (so post-shutdown
        ``/metrics`` exports keep the totals), ask workers to exit,
        escalate to terminate on stragglers, then close and unlink the
        segment — the parent is its owner, so exactly one unlink happens
        and the resource tracker reports no leaks at interpreter exit.
        """
        if self._closed:
            return
        try:
            self._final_states = self._worker_states()
        except Exception:
            self._final_states = []
        self._closed = True
        conns = getattr(self, "_conns", [])
        for shard, conn in enumerate(conns):
            try:
                conn.send(("shutdown",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        for shard, conn in enumerate(conns):
            try:
                if conn.poll(timeout):
                    conn.recv()
            except (EOFError, OSError):
                pass
        for process in getattr(self, "_procs", []):
            process.join(timeout)
            if process.is_alive():
                process.terminate()
                process.join(1.0)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        shared = getattr(self, "_shared", None)
        if shared is not None:
            shared.close()
            shared.unlink()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close(timeout=1.0)
        except Exception:
            pass
