"""A small stdlib HTTP front-end for :class:`RecommendationEngine`.

No web framework — ``http.server`` is enough for a reference serving
implementation and keeps the repo dependency-free.  Endpoints:

* ``POST /recommend`` — body is one request object
  (``{"user": 42, "k": 10}`` or ``{"sequence": [3, 1, 7]}``).
* ``POST /recommend/batch`` — body is ``{"requests": [...]}``; the
  whole batch is scored in one engine call (one micro-batched encode).
  Per-item failures are reported in place (``"reason"`` codes) rather
  than failing the batch.
* ``POST /admin/reload`` — hot-swap model weights from a checkpoint
  (body ``{"checkpoint": path}``; defaults to the path the engine was
  loaded from).  See :meth:`RecommendationEngine.swap_model`.
* ``GET /metrics`` — the :class:`~repro.serve.metrics.ServingMetrics`
  snapshot as JSON.
* ``GET /health`` — liveness probe with model/catalogue/resilience info.

Requests are handled on threads (``ThreadingHTTPServer``) but scoring
is serialized through one lock: the numpy engine is CPU-bound anyway,
and the engine's caches are not thread-safe.  Because of that lock, the
server *sheds* load instead of queueing it invisibly: beyond
``max_inflight`` concurrently admitted scoring requests, clients get a
structured 503 with a ``Retry-After`` hint (see
:class:`~repro.serve.resilience.AdmissionController`).

Every error — on GET and POST alike — is a structured JSON envelope
``{"error": <human text>, "reason": <machine code>}``; the full
status/reason decision table lives in ``docs/SERVING.md``.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import nullcontext
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.nn.serialization import CheckpointError
from repro.serve.engine import EngineOverloaded, ModelSwapError, RecommendationEngine
from repro.serve.requests import RecRequest, RequestError
from repro.serve.resilience import (
    REASON_QUEUE_FULL,
    AdmissionController,
    ServingUnavailable,
)

#: Refuse request bodies beyond this size (1 MiB) to bound memory.
MAX_BODY_BYTES = 1 << 20

#: Machine-readable reason codes used directly by the HTTP layer
#: (engine-level codes live in :mod:`repro.serve.resilience`).
REASON_BODY_TOO_LARGE = "body_too_large"
REASON_SWAP_FAILED = "swap_failed"
REASON_INTERNAL = "internal"
REASON_NOT_FOUND = "not_found"


class BodyTooLarge(RequestError):
    """Request body exceeds :data:`MAX_BODY_BYTES`; mapped to HTTP 413."""


class CheckpointWatcher(threading.Thread):
    """Poll a checkpoint directory and hot-reload newer steps.

    The deployment story behind ``repro serve --watch-checkpoints``: a
    trainer writes rotated archives into a
    :class:`~repro.runtime.checkpointing.CheckpointManager` directory
    while the server polls ``latest_step()``; when a newer step
    appears, the server swaps it in behind its request lock.  Failed
    swaps (corrupt archive, probe failure) leave the old weights
    serving and are not retried until an even newer step shows up —
    the failure is visible in the ``model_swap_failures`` counter.
    """

    def __init__(
        self,
        server: "RecommendationServer",
        directory: str,
        interval_s: float = 2.0,
    ) -> None:
        super().__init__(name="checkpoint-watcher", daemon=True)
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.server = server
        self.directory = directory
        self.interval_s = interval_s
        self._stop = threading.Event()
        # Steps already on disk are what the engine serves (or chose to
        # skip) — only steps appearing after the watcher starts trigger
        # a reload.
        from repro.runtime.checkpointing import CheckpointManager

        try:
            self._seen_step: int | None = CheckpointManager(
                directory
            ).latest_step()
        except OSError:
            self._seen_step = None

    def run(self) -> None:
        from repro.runtime.checkpointing import CheckpointManager

        manager = CheckpointManager(self.directory)
        while not self._stop.is_set():
            self.poll_once(manager)
            self._stop.wait(self.interval_s)

    def poll_once(self, manager=None) -> bool:
        """One poll step (separated out for deterministic tests)."""
        if manager is None:
            from repro.runtime.checkpointing import CheckpointManager

            manager = CheckpointManager(self.directory)
        try:
            latest = manager.latest_step()
        except OSError:
            return False
        if latest is None or latest == self._seen_step:
            return False
        self._seen_step = latest
        try:
            self.server.reload(str(manager.path_for(latest)))
        except (CheckpointError, ModelSwapError, OSError):
            return False  # old weights keep serving; counter records it
        return True

    def stop(self) -> None:
        self._stop.set()


class RecommendationServer:
    """Serve an engine over HTTP (see module docstring for endpoints)."""

    def __init__(
        self,
        engine: RecommendationEngine,
        host: str = "127.0.0.1",
        port: int = 8080,
        max_inflight: int = 64,
        retry_after_s: float = 1.0,
    ) -> None:
        self.engine = engine
        # Single-process engines are not safe for concurrent scoring,
        # so requests serialize behind one lock; a thread-safe engine
        # (the sharded worker pool) serves HTTP threads concurrently.
        self._lock = (
            nullcontext()
            if getattr(engine, "thread_safe", False)
            else threading.Lock()
        )
        self.admission = AdmissionController(
            max_inflight=max_inflight,
            retry_after_s=retry_after_s,
            metrics=engine.metrics,
        )
        engine.metrics.touch("requests_shed")
        self._watcher: CheckpointWatcher | None = None
        self._serving = threading.Event()
        handler = _make_handler(self)
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (useful with ``port=0``)."""
        return self.httpd.server_address[:2]

    def _now(self) -> float:
        """Monotonic arrival stamp on the engine's (possibly fake) clock."""
        policy = self.engine.policy
        return policy.clock() if policy is not None else time.monotonic()

    def handle_single(self, payload: dict, started: float | None = None) -> dict:
        """Score one request object (the ``/recommend`` body)."""
        request = RecRequest.from_dict(payload)
        with self.admission.admit():
            with self._lock:
                result = self.engine.recommend_batch(
                    [request], started=started
                )[0]
        return result.to_dict()

    def handle_batch(self, payload: dict, started: float | None = None) -> dict:
        """Score a ``{"requests": [...]}`` batch in one engine call.

        Individual failures (bad request, blown deadline) come back as
        per-item ``{"error", "reason"}`` entries so one poisoned item
        cannot fail its neighbours.
        """
        if not isinstance(payload, dict) or "requests" not in payload:
            raise RequestError('batch body must be {"requests": [...]}')
        items = payload["requests"]
        if not isinstance(items, list):
            raise RequestError('"requests" must be a list')
        requests = [RecRequest.from_dict(item) for item in items]
        with self.admission.admit():
            with self._lock:
                results = self.engine.recommend_batch(
                    requests, started=started, on_error="report"
                )
        return {"results": [r.to_dict() for r in results]}

    def reload(self, checkpoint: str | None = None) -> dict:
        """Hot-swap model weights (the ``/admin/reload`` body handler)."""
        target = checkpoint or self.engine.checkpoint_path
        if not target:
            raise RequestError(
                "no checkpoint to reload: engine was not built from a "
                'checkpoint; pass {"checkpoint": <path>}'
            )
        with self._lock:
            info = self.engine.swap_model(target)
        return {"status": "reloaded", **info}

    def health(self) -> dict:
        """Liveness payload for ``/health``."""
        payload = {
            "status": "ok",
            "model": type(self.engine.model).__name__,
            "num_items": self.engine.dataset.num_items,
            "num_users": self.engine.dataset.num_users,
            "model_version": self.engine.model_version,
            "inflight": self.admission.inflight,
        }
        if self.engine.policy is not None:
            payload["breaker"] = self.engine.policy.breaker.state
        if self.engine.checkpoint_path:
            payload["checkpoint"] = self.engine.checkpoint_path
        if self.engine.index is not None:
            payload["index"] = self.engine.index.stats()
        worker_info = getattr(self.engine, "worker_info", None)
        if worker_info is not None:
            payload["workers"] = worker_info()
        return payload

    def watch_checkpoints(self, directory: str, interval_s: float = 2.0) -> None:
        """Start the background :class:`CheckpointWatcher` on ``directory``."""
        if self._watcher is not None:
            raise RuntimeError("a checkpoint watcher is already running")
        self._watcher = CheckpointWatcher(self, directory, interval_s=interval_s)
        self._watcher.start()

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown`."""
        self._serving.set()
        self.httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop the listener (and checkpoint watcher) and release the socket."""
        if self._watcher is not None:
            self._watcher.stop()
            self._watcher.join(timeout=5.0)
            self._watcher = None
        # BaseServer.shutdown blocks forever unless serve_forever has run;
        # a server that was constructed but never served just closes.
        if self._serving.is_set():
            self.httpd.shutdown()
        self.httpd.server_close()


def _make_handler(server: RecommendationServer) -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, format: str, *args) -> None:  # noqa: A002
            pass  # keep stdout clean; metrics cover observability

        def _reply(
            self,
            status: int,
            payload: dict,
            retry_after_s: float | None = None,
        ) -> None:
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if retry_after_s is not None:
                self.send_header("Retry-After", f"{retry_after_s:g}")
            self.end_headers()
            self.wfile.write(body)

        def _read_json(self) -> dict:
            length = int(self.headers.get("Content-Length", 0))
            if length > MAX_BODY_BYTES:
                raise BodyTooLarge(
                    f"request body of {length} bytes exceeds the "
                    f"{MAX_BODY_BYTES}-byte limit"
                )
            # rfile.read(n) may return fewer than n bytes on a socket;
            # keep reading until the declared Content-Length arrives.
            chunks: list[bytes] = []
            remaining = length
            while remaining > 0:
                chunk = self.rfile.read(remaining)
                if not chunk:
                    raise RequestError(
                        f"truncated request body: expected {length} bytes, "
                        f"got {length - remaining}"
                    )
                chunks.append(chunk)
                remaining -= len(chunk)
            try:
                return json.loads(b"".join(chunks) or b"{}")
            except json.JSONDecodeError as error:
                raise RequestError(f"invalid JSON body: {error}") from error

        def _guarded(self, handler) -> None:
            """Run ``handler()`` inside the structured error envelope.

            One mapping for GET and POST alike: no path may leak a raw
            traceback or an unexplained status to a client.
            """
            try:
                handler()
            except BodyTooLarge as error:
                self._reply(
                    413, {"error": str(error), "reason": REASON_BODY_TOO_LARGE}
                )
            except RequestError as error:
                self._reply(400, {"error": str(error), "reason": "bad_request"})
            except ServingUnavailable as error:
                # Shed (503) and deadline-exceeded (504) refusals.
                self._reply(
                    error.status,
                    {"error": str(error), "reason": error.reason},
                    retry_after_s=error.retry_after_s,
                )
            except EngineOverloaded as error:
                self._reply(
                    503,
                    {"error": str(error), "reason": REASON_QUEUE_FULL},
                    retry_after_s=server.admission.retry_after_s,
                )
            except (CheckpointError, ModelSwapError) as error:
                self._reply(
                    500,
                    {
                        "error": f"{type(error).__name__}: {error}",
                        "reason": REASON_SWAP_FAILED,
                    },
                )
            except Exception as error:  # noqa: BLE001 - don't kill the server
                self._reply(
                    500,
                    {
                        "error": f"{type(error).__name__}: {error}",
                        "reason": REASON_INTERNAL,
                    },
                )

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            self._guarded(self._route_get)

        def _route_get(self) -> None:
            if self.path == "/metrics":
                self._reply(200, server.engine.metrics.snapshot())
            elif self.path == "/health":
                self._reply(200, server.health())
            else:
                self._reply(
                    404,
                    {
                        "error": f"unknown path {self.path}",
                        "reason": REASON_NOT_FOUND,
                    },
                )

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            started = server._now()
            self._guarded(lambda: self._route_post(started))

        def _route_post(self, started: float) -> None:
            payload = self._read_json()
            if self.path == "/recommend":
                self._reply(200, server.handle_single(payload, started=started))
            elif self.path == "/recommend/batch":
                self._reply(200, server.handle_batch(payload, started=started))
            elif self.path == "/admin/reload":
                checkpoint = payload.get("checkpoint") if payload else None
                self._reply(200, server.reload(checkpoint))
            else:
                self._reply(
                    404,
                    {
                        "error": f"unknown path {self.path}",
                        "reason": REASON_NOT_FOUND,
                    },
                )

    return Handler
