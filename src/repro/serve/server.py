"""A small stdlib HTTP front-end for :class:`RecommendationEngine`.

No web framework — ``http.server`` is enough for a reference serving
implementation and keeps the repo dependency-free.  Endpoints:

* ``POST /recommend`` — body is one request object
  (``{"user": 42, "k": 10}`` or ``{"sequence": [3, 1, 7]}``).
* ``POST /recommend/batch`` — body is ``{"requests": [...]}``; the
  whole batch is scored in one engine call (one micro-batched encode).
* ``GET /metrics`` — the :class:`~repro.serve.metrics.ServingMetrics`
  snapshot as JSON.
* ``GET /health`` — liveness probe with model/catalogue info.

Requests are handled on threads (``ThreadingHTTPServer``) but scoring
is serialized through one lock: the numpy engine is CPU-bound anyway,
and the engine's caches are not thread-safe.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve.engine import RecommendationEngine
from repro.serve.requests import RecRequest, RequestError

#: Refuse request bodies beyond this size (1 MiB) to bound memory.
MAX_BODY_BYTES = 1 << 20


class RecommendationServer:
    """Serve an engine over HTTP (see module docstring for endpoints)."""

    def __init__(self, engine: RecommendationEngine, host: str = "127.0.0.1",
                 port: int = 8080) -> None:
        self.engine = engine
        self._lock = threading.Lock()
        handler = _make_handler(self)
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (useful with ``port=0``)."""
        return self.httpd.server_address[:2]

    def handle_single(self, payload: dict) -> dict:
        """Score one request object (the ``/recommend`` body)."""
        request = RecRequest.from_dict(payload)
        with self._lock:
            return self.engine.recommend_batch([request])[0].to_dict()

    def handle_batch(self, payload: dict) -> dict:
        """Score a ``{"requests": [...]}`` batch in one engine call."""
        if not isinstance(payload, dict) or "requests" not in payload:
            raise RequestError('batch body must be {"requests": [...]}')
        items = payload["requests"]
        if not isinstance(items, list):
            raise RequestError('"requests" must be a list')
        requests = [RecRequest.from_dict(item) for item in items]
        with self._lock:
            results = self.engine.recommend_batch(requests)
        return {"results": [r.to_dict() for r in results]}

    def health(self) -> dict:
        """Liveness payload for ``/health``."""
        return {
            "status": "ok",
            "model": type(self.engine.model).__name__,
            "num_items": self.engine.dataset.num_items,
            "num_users": self.engine.dataset.num_users,
        }

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown`."""
        self.httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop the listener and release the socket."""
        self.httpd.shutdown()
        self.httpd.server_close()


def _make_handler(server: RecommendationServer) -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, format: str, *args) -> None:  # noqa: A002
            pass  # keep stdout clean; metrics cover observability

        def _reply(self, status: int, payload: dict) -> None:
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _read_json(self) -> dict:
            length = int(self.headers.get("Content-Length", 0))
            if length > MAX_BODY_BYTES:
                raise RequestError(f"request body over {MAX_BODY_BYTES} bytes")
            try:
                return json.loads(self.rfile.read(length) or b"{}")
            except json.JSONDecodeError as error:
                raise RequestError(f"invalid JSON body: {error}") from error

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            if self.path == "/metrics":
                self._reply(200, server.engine.metrics.snapshot())
            elif self.path == "/health":
                self._reply(200, server.health())
            else:
                self._reply(404, {"error": f"unknown path {self.path}"})

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            try:
                payload = self._read_json()
                if self.path == "/recommend":
                    self._reply(200, server.handle_single(payload))
                elif self.path == "/recommend/batch":
                    self._reply(200, server.handle_batch(payload))
                else:
                    self._reply(404, {"error": f"unknown path {self.path}"})
            except RequestError as error:
                self._reply(400, {"error": str(error)})
            except Exception as error:  # noqa: BLE001 - don't kill the server
                self._reply(500, {"error": f"{type(error).__name__}: {error}"})

    return Handler
