"""One typed config for every serving entry point.

``serve``, ``chaos``, ``recommend`` and the test-suite all used to
re-assemble the same pile of knobs (checkpoint, model/dataset/scale,
precision, batch/cache sizes, resilience, and now retrieval-index
selection) from loose ``argparse`` attributes.  :class:`ServeConfig`
is the single source of truth:

* ``ServeConfig.from_args(args)`` lifts an argparse namespace (any of
  the serving subcommands) into a validated config;
* ``build_engine()`` turns it into a ready
  :class:`~repro.serve.engine.RecommendationEngine`, including the
  retrieval index (``index``/``index_path``/``nprobe``/``rerank``);
* ``to_json()`` / ``from_json()`` round-trip it for logs, ``/health``
  payloads and reproducible test fixtures.

See ``docs/SERVING.md`` (engine) and ``docs/RETRIEVAL.md`` (index
selection) for what the knobs do.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, fields

from repro.retrieval import INDEX_KINDS, ItemIndex, make_index

__all__ = ["ServeConfig"]


@dataclass
class ServeConfig:
    """Validated knobs for building a serving engine.

    Parameters mirror the ``repro serve`` CLI one to one; every
    serving subcommand (``serve``, ``chaos``, ``recommend``,
    ``index``) round-trips through this class so the knobs cannot
    drift apart.
    """

    # --- checkpoint + model/dataset identity ---------------------------
    checkpoint: str
    model: str = "CL4SRec"
    dataset: str = "beauty"
    preset: str = "smoke"
    dataset_scale: float | None = None
    dim: int | None = None
    max_length: int | None = None
    seed: int | None = None
    #: Serving precision ("float32"/"float64"); ``None`` adopts the
    #: checkpoint's own dtype.
    dtype: str | None = None

    # --- engine shape --------------------------------------------------
    max_batch_size: int = 256
    cache_size: int = 4096
    max_queue: int = 8192
    split: str = "test"
    #: Scoring worker processes: 0 (default) serves in-process on the
    #: historical single-process path, bit-identically; N >= 1 shards
    #: the cache by user hash over N workers (docs/SCALING.md).
    workers: int = 0

    # --- resilience ----------------------------------------------------
    deadline_ms: float | None = None
    resilience: bool = True

    # --- retrieval index (docs/RETRIEVAL.md) ---------------------------
    #: Registered index kind: "exact" (default, bit-identical dense
    #: path), "ivf", "ivf_pq" or "ivf_flat".
    index: str = "exact"
    #: Load a prebuilt ``repro index`` artifact instead of building
    #: inline; its kind overrides :attr:`index` and the engine verifies
    #: it against the live model's matrix.
    index_path: str | None = None
    #: IVF cells probed per query (exactness/latency knob).
    nprobe: int | None = None
    #: Exact-rescore shortlist size for quantized indexes.
    rerank: int | None = None
    #: IVF cell count; default ``sqrt(num_items)``.
    nlist: int | None = None
    #: Product-quantization subspace count (``ivf_pq`` only).
    pq_m: int | None = None

    def __post_init__(self) -> None:
        if self.index not in INDEX_KINDS:
            raise ValueError(
                f"unknown index kind {self.index!r}; "
                f"registered: {sorted(INDEX_KINDS)}"
            )
        for name in ("max_batch_size", "cache_size", "max_queue"):
            if getattr(self, name) < 1:
                raise ValueError(
                    f"{name} must be positive, got {getattr(self, name)}"
                )
        for name in ("nprobe", "rerank", "nlist", "pq_m"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(
                f"deadline_ms must be positive, got {self.deadline_ms}"
            )
        if self.workers < 0:
            raise ValueError(
                f"workers must be non-negative, got {self.workers}"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_args(cls, args) -> "ServeConfig":
        """Lift an argparse namespace from any serving subcommand.

        Missing attributes fall back to the field defaults, so one
        constructor serves every subcommand's (slightly different)
        flag surface.
        """
        kwargs = {}
        for field in fields(cls):
            value = getattr(args, field.name, None)
            if value is not None:
                kwargs[field.name] = value
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ServeConfig":
        payload = json.loads(text)
        known = {field.name for field in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown ServeConfig fields: {sorted(unknown)}")
        return cls(**payload)

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def scale(self):
        """The :class:`~repro.experiments.config.ExperimentScale` in use."""
        from repro.experiments.config import (
            BENCH_SCALE,
            FULL_SCALE,
            SMOKE_SCALE,
        )

        presets = {"smoke": SMOKE_SCALE, "bench": BENCH_SCALE, "full": FULL_SCALE}
        try:
            scale = presets[self.preset]
        except KeyError:
            raise ValueError(
                f"unknown preset {self.preset!r}; choose from {sorted(presets)}"
            ) from None
        overrides = {
            name: getattr(self, name)
            for name in ("dataset_scale", "dim", "max_length", "seed")
            if getattr(self, name) is not None
        }
        return scale.with_overrides(**overrides) if overrides else scale

    def index_params(self) -> dict:
        """Constructor kwargs for :func:`repro.retrieval.make_index`."""
        if self.index == "exact":
            return {}
        params = {
            name: getattr(self, name)
            for name in ("nprobe", "rerank", "nlist", "pq_m")
            if getattr(self, name) is not None
        }
        return params

    def build_index(self) -> ItemIndex:
        """The (possibly prebuilt) index the engine should serve with.

        With :attr:`index_path` the artifact is loaded (its stored kind
        wins over :attr:`index`) and the runtime exactness knobs
        (``nprobe`` / ``rerank``) are applied on top — routing
        structure is baked at build time, probing depth is not.
        Otherwise an unbuilt index of kind :attr:`index` is returned
        and the engine fits it to the live model's matrix.
        """
        if self.index_path is not None:
            from repro.retrieval import load_index

            index = load_index(self.index_path)
            if hasattr(index, "with_params"):
                index.with_params(nprobe=self.nprobe, rerank=self.rerank)
            return index
        return make_index(self.index, **self.index_params())

    def build_engine(self, **overrides):
        """Dataset + model + checkpoint + index → a ready engine.

        ``overrides`` are forwarded to
        :meth:`RecommendationEngine.from_checkpoint` and win over the
        config (the chaos harness injects its fault injector and a
        fast-recovery resilience policy this way).
        """
        from repro.data.registry import load_dataset
        from repro.models.registry import build_model
        from repro.serve.engine import RecommendationEngine
        from repro.serve.resilience import ResilienceConfig

        scale = self.scale()
        dataset = load_dataset(
            self.dataset, scale=scale.dataset_scale, seed=scale.seed
        )
        model = build_model(self.model, dataset, scale)
        engine_kwargs = dict(
            dtype=self.dtype,
            max_batch_size=self.max_batch_size,
            cache_size=self.cache_size,
            max_queue=self.max_queue,
            split=self.split,
            index=self.build_index(),
        )
        if "resilience" not in overrides:
            engine_kwargs["resilience"] = (
                ResilienceConfig(default_deadline_ms=self.deadline_ms)
                if self.resilience
                else None
            )
        engine_kwargs.update(overrides)
        engine = RecommendationEngine.from_checkpoint(
            os.fspath(self.checkpoint), model, dataset, **engine_kwargs
        )
        if self.workers > 0:
            from repro.serve.workers import ShardedEngine

            return ShardedEngine(engine, workers=self.workers)
        return engine
