"""Request / response types for the serving engine, plus JSONL I/O.

A request addresses a user either by **dataset user id** (the engine
looks up the interaction history and can exclude seen items) or by a
**raw item-id sequence** (a live session the dataset has never seen).
The JSONL wire format mirrors the dataclass fields::

    {"user": 42, "k": 10}
    {"sequence": [3, 17, 5], "k": 5}
    {"user": 7, "k": 20, "exclude_seen": false}
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

import numpy as np


class RequestError(ValueError):
    """A malformed recommendation request (bad JSON, missing fields...)."""


@dataclass(frozen=True)
class RecRequest:
    """One top-k recommendation request.

    Exactly one of ``user`` / ``sequence`` must be provided.  With
    ``exclude_seen`` (default) the history is removed from the
    candidates: the dataset's seen-item set for user requests, the
    sequence's own items for raw-sequence requests.
    """

    user: int | None = None
    sequence: tuple[int, ...] | None = None
    k: int = 10
    exclude_seen: bool = True

    def __post_init__(self) -> None:
        if (self.user is None) == (self.sequence is None):
            raise RequestError(
                "exactly one of 'user' or 'sequence' must be provided"
            )
        if self.k < 1:
            raise RequestError(f"k must be positive, got {self.k}")
        if self.sequence is not None:
            object.__setattr__(self, "sequence", tuple(int(i) for i in self.sequence))
            if len(self.sequence) == 0:
                raise RequestError("sequence must not be empty")

    @classmethod
    def from_dict(cls, payload: dict) -> "RecRequest":
        """Build a request from a decoded JSON object."""
        if not isinstance(payload, dict):
            raise RequestError(f"request must be a JSON object, got {payload!r}")
        unknown = set(payload) - {"user", "sequence", "k", "exclude_seen"}
        if unknown:
            raise RequestError(f"unknown request fields: {sorted(unknown)}")
        return cls(
            user=payload.get("user"),
            sequence=(
                tuple(payload["sequence"]) if "sequence" in payload else None
            ),
            k=int(payload.get("k", 10)),
            exclude_seen=bool(payload.get("exclude_seen", True)),
        )


@dataclass
class Recommendation:
    """Top-k response for one request."""

    items: np.ndarray
    scores: np.ndarray
    request: RecRequest = field(repr=False)
    cached: bool = False  # user representation served from cache

    def to_dict(self) -> dict:
        """JSON-friendly payload (deterministic for identical requests)."""
        payload: dict = {}
        if self.request.user is not None:
            payload["user"] = int(self.request.user)
        else:
            payload["sequence"] = list(self.request.sequence)
        payload["items"] = [int(i) for i in self.items]
        payload["scores"] = [round(float(s), 6) for s in self.scores]
        return payload


def read_requests_file(path: str | os.PathLike) -> list[RecRequest]:
    """Parse a JSONL request file; blank lines and ``#`` comments skipped."""
    requests: list[RecRequest] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise RequestError(
                    f"{os.fspath(path)}:{lineno}: invalid JSON: {error}"
                ) from error
            try:
                requests.append(RecRequest.from_dict(payload))
            except RequestError as error:
                raise RequestError(
                    f"{os.fspath(path)}:{lineno}: {error}"
                ) from error
    return requests
