"""Request / response types for the serving engine, plus JSONL I/O.

A request addresses a user either by **dataset user id** (the engine
looks up the interaction history and can exclude seen items) or by a
**raw item-id sequence** (a live session the dataset has never seen).
The JSONL wire format mirrors the dataclass fields::

    {"user": 42, "k": 10}
    {"sequence": [3, 17, 5], "k": 5}
    {"user": 7, "k": 20, "exclude_seen": false}
    {"user": 42, "k": 10, "deadline_ms": 50}

``deadline_ms`` is the request's latency budget: past it the engine
degrades to the fallback chain (or answers 504 if nothing useful can
be served) instead of queueing forever — see ``docs/SERVING.md``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

import numpy as np


class RequestError(ValueError):
    """A malformed recommendation request (bad JSON, missing fields...)."""


@dataclass(frozen=True)
class RecRequest:
    """One top-k recommendation request.

    Exactly one of ``user`` / ``sequence`` must be provided.  With
    ``exclude_seen`` (default) the history is removed from the
    candidates: the dataset's seen-item set for user requests, the
    sequence's own items for raw-sequence requests.
    """

    user: int | None = None
    sequence: tuple[int, ...] | None = None
    k: int = 10
    exclude_seen: bool = True
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        if (self.user is None) == (self.sequence is None):
            raise RequestError(
                "exactly one of 'user' or 'sequence' must be provided"
            )
        if self.k < 1:
            raise RequestError(f"k must be positive, got {self.k}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise RequestError(
                f"deadline_ms must be positive, got {self.deadline_ms}"
            )
        if self.sequence is not None:
            object.__setattr__(self, "sequence", tuple(int(i) for i in self.sequence))
            if len(self.sequence) == 0:
                raise RequestError("sequence must not be empty")

    @classmethod
    def from_dict(cls, payload: dict) -> "RecRequest":
        """Build a request from a decoded JSON object."""
        if not isinstance(payload, dict):
            raise RequestError(f"request must be a JSON object, got {payload!r}")
        unknown = set(payload) - {
            "user", "sequence", "k", "exclude_seen", "deadline_ms"
        }
        if unknown:
            raise RequestError(f"unknown request fields: {sorted(unknown)}")
        deadline_ms = payload.get("deadline_ms")
        try:
            return cls(
                user=payload.get("user"),
                sequence=(
                    tuple(payload["sequence"]) if "sequence" in payload else None
                ),
                k=int(payload.get("k", 10)),
                exclude_seen=bool(payload.get("exclude_seen", True)),
                deadline_ms=(
                    float(deadline_ms) if deadline_ms is not None else None
                ),
            )
        except (TypeError, ValueError) as error:
            if isinstance(error, RequestError):
                raise
            raise RequestError(f"malformed request field: {error}") from error


@dataclass
class Recommendation:
    """Top-k response for one request.

    ``degraded``/``fallback`` mark answers served from the resilience
    fallback chain (``"cache"`` or ``"popularity"`` tier); ``error``
    carries a machine-readable reason code (``"deadline_exceeded"``,
    ``"bad_request"``) when the request could not be served at all —
    such results have empty ``items``/``scores`` and ``detail`` holds
    the human-readable explanation.  ``model_version`` is the engine's
    weight generation that produced the answer (bumped by hot reloads).
    """

    items: np.ndarray
    scores: np.ndarray
    request: RecRequest = field(repr=False)
    cached: bool = False  # user representation served from cache
    degraded: bool = False
    fallback: str | None = None
    error: str | None = None
    detail: str | None = None
    model_version: int | None = None

    def to_dict(self) -> dict:
        """JSON-friendly payload (deterministic for identical requests)."""
        payload: dict = {}
        if self.request.user is not None:
            payload["user"] = int(self.request.user)
        else:
            payload["sequence"] = list(self.request.sequence)
        if self.error is not None:
            payload["error"] = self.detail or self.error
            payload["reason"] = self.error
            if self.model_version is not None:
                payload["model_version"] = int(self.model_version)
            return payload
        payload["items"] = [int(i) for i in self.items]
        payload["scores"] = [round(float(s), 6) for s in self.scores]
        if self.degraded:
            payload["degraded"] = True
            if self.fallback is not None:
                payload["fallback"] = self.fallback
        if self.model_version is not None:
            payload["model_version"] = int(self.model_version)
        return payload


def read_requests_file(path: str | os.PathLike) -> list[RecRequest]:
    """Parse a JSONL request file; blank lines and ``#`` comments skipped."""
    requests: list[RecRequest] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise RequestError(
                    f"{os.fspath(path)}:{lineno}: invalid JSON: {error}"
                ) from error
            try:
                requests.append(RecRequest.from_dict(payload))
            except RequestError as error:
                raise RequestError(
                    f"{os.fspath(path)}:{lineno}: {error}"
                ) from error
    return requests
