"""High-throughput batch construction (``pipeline="vectorized"``).

Three ingredients turn the per-sequence Python loops of the reference
loaders into a pipeline that keeps the optimizer fed:

* :func:`padded_views` — each dataset's left-padded input/target/full
  matrices are computed **once** (vectorized, no per-user loop) and
  cached on the dataset object, invalidated automatically when the
  dataset changes.  Batch construction then reduces to fancy indexing.
* :class:`Prefetcher` — a double-buffered background thread (stdlib
  ``threading``, bounded queue) that overlaps batch building with the
  forward/backward pass.  Worker exceptions propagate to the consumer;
  an early-exiting consumer (``close()``, ``with``-block, Ctrl-C)
  shuts the worker down without deadlock.
* :func:`batch_stream` / :class:`CyclingStream` — the adapters the
  training loops use to switch between the reference path and the
  prefetched vectorized path per
  :class:`~repro.models.training.TrainConfig`-style ``pipeline``
  switches.

Determinism: the vectorized loaders draw from a dedicated child stream
(:func:`repro.augment.batched.spawn_stream`) so the worker thread never
races the model's own generator (dropout) — a fixed seed reproduces
runs bit-for-bit, asserted end-to-end in
``tests/integration/test_determinism_e2e.py``.  See
``docs/PERFORMANCE.md`` for the architecture and measured speedups.
"""

from __future__ import annotations

import queue
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

#: Recognized values of the ``pipeline`` config switch.
PIPELINES = ("reference", "vectorized")

#: Attribute under which a dataset caches its padded views.
_CACHE_ATTR = "_repro_padded_views"

#: Queue capacity of the background prefetcher (double buffering).
DEFAULT_PREFETCH_DEPTH = 2


def validate_pipeline(pipeline: str) -> str:
    """Return ``pipeline`` or raise on an unknown switch value."""
    if pipeline not in PIPELINES:
        raise ValueError(
            f"pipeline must be one of {PIPELINES}, got {pipeline!r}"
        )
    return pipeline


@dataclass(frozen=True)
class PaddedViews:
    """Precomputed left-padded matrices for one dataset at one ``T``.

    Attributes
    ----------
    inputs / targets:
        ``(U, T)`` supervised next-item matrices —
        ``pad_left(seq[:-1], T)`` and ``pad_left(seq[1:], T)`` for
        every user, exactly what the reference loop produced per batch.
    sequences / lengths:
        ``(U, T)`` full training sequences (last ``T`` items) and
        their clamped lengths ``min(len(seq), T)`` — the substrate the
        batched augmentations transform.
    fingerprint:
        Cheap dataset summary used to invalidate the cache when the
        dataset's sequences change.
    """

    inputs: np.ndarray
    targets: np.ndarray
    sequences: np.ndarray
    lengths: np.ndarray
    fingerprint: tuple

    @property
    def max_length(self) -> int:
        return self.inputs.shape[1]


def _fingerprint(train_sequences: Sequence[np.ndarray], num_items: int) -> tuple:
    total = int(sum(len(seq) for seq in train_sequences))
    return (len(train_sequences), total, int(num_items))


def _pad_rows(
    flat: np.ndarray, starts: np.ndarray, counts: np.ndarray, max_length: int
) -> np.ndarray:
    """Left-pad ``flat[starts[r] : starts[r] + counts[r]]`` per row.

    Pure fancy indexing — the whole ``(U, T)`` matrix is gathered in
    one shot instead of U per-row ``pad_left`` calls.
    """
    rows = len(starts)
    out = np.zeros((rows, max_length), dtype=np.int64)
    if rows == 0 or flat.size == 0:
        return out
    offsets = np.arange(max_length)[None, :] - (max_length - counts)[:, None]
    valid = offsets >= 0
    source = starts[:, None] + np.where(valid, offsets, 0)
    np.copyto(out, flat[np.clip(source, 0, flat.size - 1)], where=valid)
    return out


def build_padded_views(
    train_sequences: Sequence[np.ndarray], max_length: int, num_items: int
) -> PaddedViews:
    """Compute :class:`PaddedViews` for a sequence list (no caching)."""
    if max_length < 1:
        raise ValueError(f"max_length must be positive, got {max_length}")
    lengths_full = np.fromiter(
        (len(seq) for seq in train_sequences),
        dtype=np.int64,
        count=len(train_sequences),
    )
    flat = (
        np.concatenate([np.asarray(s, dtype=np.int64) for s in train_sequences])
        if lengths_full.sum() > 0
        else np.empty(0, dtype=np.int64)
    )
    ends = np.cumsum(lengths_full)

    # Full sequences, keeping the most recent max_length items.
    seq_counts = np.minimum(lengths_full, max_length)
    sequences = _pad_rows(flat, ends - seq_counts, seq_counts, max_length)

    # Supervised views: inputs = pad_left(seq[:-1], T) ends one item
    # early; targets = pad_left(seq[1:], T) ends at the sequence end.
    shifted_counts = np.minimum(np.maximum(lengths_full - 1, 0), max_length)
    inputs = _pad_rows(flat, (ends - 1) - shifted_counts, shifted_counts, max_length)
    targets = _pad_rows(flat, ends - shifted_counts, shifted_counts, max_length)

    return PaddedViews(
        inputs=inputs,
        targets=targets,
        sequences=sequences,
        lengths=seq_counts,
        fingerprint=_fingerprint(train_sequences, num_items),
    )


def padded_views(dataset, max_length: int) -> PaddedViews:
    """The dataset's cached :class:`PaddedViews` at ``max_length``.

    The first call per ``(dataset, max_length)`` builds the matrices;
    subsequent calls are a dict lookup.  A cheap fingerprint (sequence
    count, total interactions, vocabulary size) detects dataset
    mutation and rebuilds stale entries.
    """
    fingerprint = _fingerprint(dataset.train_sequences, dataset.num_items)
    cache: dict[int, PaddedViews] = dataset.__dict__.setdefault(_CACHE_ATTR, {})
    views = cache.get(max_length)
    if views is None or views.fingerprint != fingerprint:
        views = build_padded_views(
            dataset.train_sequences, max_length, dataset.num_items
        )
        cache[max_length] = views
    return views


class Prefetcher:
    """Background double buffering over a batch iterator.

    A single worker thread drains ``source`` into a bounded queue
    (``depth`` slots — two by default, i.e. classic double buffering)
    while the consumer iterates; batch construction overlaps the
    forward/backward pass instead of serializing with it.

    Guarantees:

    * **Order** — batches arrive in exactly the order ``source``
      yields them (single worker, FIFO queue), so a seeded run stays
      deterministic.
    * **Exception propagation** — an exception raised inside
      ``source`` is re-raised in the consumer at the point of the next
      ``next()`` call.
    * **No deadlock on early exit** — ``close()`` (also via the
      context-manager protocol, and hence on Ctrl-C out of a
      ``with``-block) signals the worker, drains the queue and joins
      the thread; a worker blocked on a full queue wakes up and exits.

    Single consumer assumed; the worker thread is a daemon as a last
    resort so an unclosed prefetcher can never hang interpreter exit.
    """

    def __init__(
        self,
        source: Iterable,
        depth: int = DEFAULT_PREFETCH_DEPTH,
        obs=None,
        name: str = "repro-prefetch",
    ) -> None:
        if depth < 1:
            raise ValueError(f"prefetch depth must be >= 1, got {depth}")
        self._queue: queue.Queue = queue.Queue(maxsize=depth)
        self._stop = threading.Event()
        self._finished = False
        self._obs = obs
        self._thread = threading.Thread(
            target=self._worker, args=(source,), name=name, daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _put(self, item) -> bool:
        """Enqueue, polling the stop flag; False when shut down."""
        while not self._stop.is_set():
            try:
                self._queue.put(item, timeout=0.05)
                return True
            except queue.Full:
                continue
        return False

    def _worker(self, source: Iterable) -> None:
        try:
            for item in source:
                if not self._put(("batch", item)) or self._stop.is_set():
                    return
            self._put(("done", None))
        except BaseException as exc:  # pragma: no branch - propagate anything
            self._put(("error", exc))

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def __iter__(self) -> "Prefetcher":
        return self

    def __next__(self):
        if self._finished:
            raise StopIteration
        kind, payload = self._queue.get()
        if self._obs is not None:
            self._obs.observe(
                "data.prefetch_queue_depth", float(self._queue.qsize())
            )
        if kind == "batch":
            return payload
        self._finished = True
        self._thread.join(timeout=5.0)
        if kind == "error":
            raise payload
        raise StopIteration

    def close(self) -> None:
        """Stop the worker and release the queue (idempotent)."""
        self._finished = True
        self._stop.set()
        try:
            while True:
                self._queue.get_nowait()
        except queue.Empty:
            pass
        self._thread.join(timeout=5.0)

    @property
    def alive(self) -> bool:
        """Whether the worker thread is still running (tests)."""
        return self._thread.is_alive()

    def __enter__(self) -> "Prefetcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@contextmanager
def batch_stream(source: Iterable, pipeline: str = "reference", obs=None,
                 depth: int = DEFAULT_PREFETCH_DEPTH) -> Iterator[Iterable]:
    """Yield ``source`` as-is (reference) or prefetched (vectorized).

    The context-manager form guarantees the worker thread is torn down
    even when the training loop exits early (divergence rollback,
    ``TrainingInterrupted``, Ctrl-C)::

        with batch_stream(loader.epoch(), config.pipeline, obs=obs) as batches:
            for batch in batches:
                ...
    """
    validate_pipeline(pipeline)
    if pipeline != "vectorized":
        yield source
        return
    prefetcher = Prefetcher(source, depth=depth, obs=obs)
    try:
        yield prefetcher
    finally:
        prefetcher.close()


class CyclingStream:
    """An endless batch stream cycling over ``loader.epoch()`` passes.

    The joint training loop consumes one contrastive batch per
    supervised batch; epochs of the two loaders need not line up, so
    the contrastive side cycles — when one augmented pass is
    exhausted, a fresh ``epoch()`` begins transparently.  Under the
    vectorized pipeline each pass is wrapped in a :class:`Prefetcher`;
    call :meth:`close` (or use ``with``) to tear the worker down.
    """

    def __init__(
        self,
        loader,
        pipeline: str = "reference",
        obs=None,
        depth: int = DEFAULT_PREFETCH_DEPTH,
    ) -> None:
        self.loader = loader
        self.pipeline = validate_pipeline(pipeline)
        self._obs = obs
        self._depth = depth
        self._current = None

    def _open(self) -> None:
        source = self.loader.epoch()
        if self.pipeline == "vectorized":
            source = Prefetcher(source, depth=self._depth, obs=self._obs)
        self._current = source

    def next(self):
        """The next batch, starting a fresh epoch when one runs dry."""
        if self._current is None:
            self._open()
        try:
            return next(self._current)
        except StopIteration:
            self._close_current()
            self._open()
            # A second StopIteration (loader yields no batches at all)
            # is a real error and propagates.
            return next(self._current)

    def _close_current(self) -> None:
        current, self._current = self._current, None
        if current is None:
            return
        close = getattr(current, "close", None)
        if close is not None:
            close()

    def close(self) -> None:
        self._close_current()

    def __enter__(self) -> "CyclingStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
