"""Read interaction logs from files.

The paper's datasets ship as review dumps; production logs come as CSV
or JSONL exports.  These readers produce :class:`InteractionLog`
objects ready for the 5-core → sequence → split pipeline, so the whole
library works on real data unchanged.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Iterable

import numpy as np

from repro.data.log import InteractionLog


def _materialize(rows: Iterable[tuple[int, int, float]]) -> InteractionLog:
    users: list[int] = []
    items: list[int] = []
    times: list[float] = []
    for user, item, timestamp in rows:
        users.append(user)
        items.append(item)
        times.append(timestamp)
    if not users:
        raise ValueError("no interactions found in file")
    return InteractionLog(
        np.asarray(users, dtype=np.int64),
        np.asarray(items, dtype=np.int64),
        np.asarray(times, dtype=np.float64),
    )


def _id_mapper():
    """Map arbitrary hashable raw ids to dense integers, stably."""
    mapping: dict = {}

    def lookup(raw):
        if raw not in mapping:
            mapping[raw] = len(mapping)
        return mapping[raw]

    return lookup, mapping


def read_csv_log(
    path: str | os.PathLike,
    user_column: str = "user_id",
    item_column: str = "item_id",
    timestamp_column: str = "timestamp",
    delimiter: str = ",",
) -> InteractionLog:
    """Read a CSV with a header row into an :class:`InteractionLog`.

    User and item ids may be arbitrary strings — they are mapped to
    dense integers in first-seen order.  Timestamps must parse as
    floats (epoch seconds or any monotone numeric clock).
    """
    user_of, __ = _id_mapper()
    item_of, __ = _id_mapper()

    def rows():
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle, delimiter=delimiter)
            if reader.fieldnames is None:
                raise ValueError(f"{path}: empty CSV")
            for column in (user_column, item_column, timestamp_column):
                if column not in reader.fieldnames:
                    raise ValueError(
                        f"{path}: missing column '{column}' "
                        f"(found {reader.fieldnames})"
                    )
            for record in reader:
                yield (
                    user_of(record[user_column]),
                    item_of(record[item_column]),
                    float(record[timestamp_column]),
                )

    return _materialize(rows())


def read_jsonl_log(
    path: str | os.PathLike,
    user_field: str = "user_id",
    item_field: str = "item_id",
    timestamp_field: str = "timestamp",
) -> InteractionLog:
    """Read one-JSON-object-per-line review dumps (the Amazon format).

    Lines missing any of the three fields raise — partial records in an
    interaction log are a data bug worth surfacing, not skipping.
    """
    user_of, __ = _id_mapper()
    item_of, __ = _id_mapper()

    def rows():
        with open(path) as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                try:
                    yield (
                        user_of(record[user_field]),
                        item_of(record[item_field]),
                        float(record[timestamp_field]),
                    )
                except KeyError as missing:
                    raise ValueError(
                        f"{path}:{line_number}: missing field {missing}"
                    ) from None

    return _materialize(rows())


def write_csv_log(log: InteractionLog, path: str | os.PathLike) -> None:
    """Write a log back out as CSV (user_id, item_id, timestamp)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["user_id", "item_id", "timestamp"])
        for user, item, timestamp in zip(
            log.user_ids, log.item_ids, log.timestamps
        ):
            writer.writerow([int(user), int(item), float(timestamp)])
