"""Read interaction logs from files.

The paper's datasets ship as review dumps; production logs come as CSV
or JSONL exports.  These readers produce :class:`InteractionLog`
objects ready for the 5-core → sequence → split pipeline, so the whole
library works on real data unchanged.

Both readers take ``strict`` (default True).  Strict mode raises on the
first malformed row — right for curated research dumps, where a bad row
is a bug worth surfacing.  Lenient mode (``strict=False``) skips
malformed rows (bad field count, unparsable timestamp, truncated JSON
line) and reports the per-file skipped-row count through a
``MalformedRowsSkipped`` warning — right for real logs ingested
mid-pipeline, where one truncated line must not crash an hours-long
job.
"""

from __future__ import annotations

import csv
import json
import os
import warnings
from typing import Iterable

import numpy as np

from repro.data.log import InteractionLog


class MalformedRowsSkipped(UserWarning):
    """Lenient ingestion skipped malformed rows; carries the count.

    Attributes
    ----------
    path, skipped:
        The file read and how many of its rows were dropped.
    """

    def __init__(self, path: str, skipped: int) -> None:
        super().__init__(f"{path}: skipped {skipped} malformed row(s)")
        self.path = path
        self.skipped = skipped


def _materialize(rows: Iterable[tuple[int, int, float]]) -> InteractionLog:
    users: list[int] = []
    items: list[int] = []
    times: list[float] = []
    for user, item, timestamp in rows:
        users.append(user)
        items.append(item)
        times.append(timestamp)
    if not users:
        raise ValueError("no interactions found in file")
    return InteractionLog(
        np.asarray(users, dtype=np.int64),
        np.asarray(items, dtype=np.int64),
        np.asarray(times, dtype=np.float64),
    )


def _id_mapper():
    """Map arbitrary hashable raw ids to dense integers, stably."""
    mapping: dict = {}

    def lookup(raw):
        if raw not in mapping:
            mapping[raw] = len(mapping)
        return mapping[raw]

    return lookup, mapping


def _report_skipped(path: str | os.PathLike, skipped: int) -> None:
    if skipped:
        warnings.warn(MalformedRowsSkipped(os.fspath(path), skipped), stacklevel=3)


def read_csv_log(
    path: str | os.PathLike,
    user_column: str = "user_id",
    item_column: str = "item_id",
    timestamp_column: str = "timestamp",
    delimiter: str = ",",
    strict: bool = True,
) -> InteractionLog:
    """Read a CSV with a header row into an :class:`InteractionLog`.

    User and item ids may be arbitrary strings — they are mapped to
    dense integers in first-seen order.  Timestamps must parse as
    floats (epoch seconds or any monotone numeric clock).

    With ``strict=False``, rows with a bad field count (missing or
    extra cells) or an unparsable timestamp are skipped and counted; the
    count is reported via :class:`MalformedRowsSkipped`.  A missing
    header column is always an error — that is file-level, not row-level
    damage.
    """
    user_of, __ = _id_mapper()
    item_of, __ = _id_mapper()
    skipped = 0

    def rows():
        nonlocal skipped
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle, delimiter=delimiter, restkey="__rest__")
            if reader.fieldnames is None:
                raise ValueError(f"{path}: empty CSV")
            for column in (user_column, item_column, timestamp_column):
                if column not in reader.fieldnames:
                    raise ValueError(
                        f"{path}: missing column '{column}' "
                        f"(found {reader.fieldnames})"
                    )
            for record in reader:
                try:
                    if "__rest__" in record:
                        raise ValueError(
                            f"{path}:{reader.line_num}: too many fields"
                        )
                    user = record[user_column]
                    item = record[item_column]
                    timestamp = record[timestamp_column]
                    if user is None or item is None or timestamp is None:
                        raise ValueError(
                            f"{path}:{reader.line_num}: too few fields"
                        )
                    parsed = float(timestamp)
                except ValueError:
                    if strict:
                        raise
                    skipped += 1
                    continue
                yield (user_of(user), item_of(item), parsed)

    log = _materialize(rows())
    _report_skipped(path, skipped)
    return log


def read_jsonl_log(
    path: str | os.PathLike,
    user_field: str = "user_id",
    item_field: str = "item_id",
    timestamp_field: str = "timestamp",
    strict: bool = True,
) -> InteractionLog:
    """Read one-JSON-object-per-line review dumps (the Amazon format).

    In strict mode (default), lines missing any of the three fields
    raise — partial records in a curated interaction log are a data bug
    worth surfacing, not skipping.  With ``strict=False``, truncated
    JSON lines, non-object lines, missing fields and unparsable
    timestamps are skipped and counted, reported via
    :class:`MalformedRowsSkipped`.
    """
    user_of, __ = _id_mapper()
    item_of, __ = _id_mapper()
    skipped = 0

    def rows():
        nonlocal skipped
        with open(path) as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    if not isinstance(record, dict):
                        raise ValueError(
                            f"{path}:{line_number}: not a JSON object"
                        )
                    try:
                        user = record[user_field]
                        item = record[item_field]
                        timestamp = float(record[timestamp_field])
                    except KeyError as missing:
                        raise ValueError(
                            f"{path}:{line_number}: missing field {missing}"
                        ) from None
                except (ValueError, TypeError) as error:
                    if strict:
                        if isinstance(error, json.JSONDecodeError):
                            raise ValueError(
                                f"{path}:{line_number}: bad JSON: {error}"
                            ) from None
                        raise
                    skipped += 1
                    continue
                yield (user_of(user), item_of(item), timestamp)

    log = _materialize(rows())
    _report_skipped(path, skipped)
    return log


def write_csv_log(log: InteractionLog, path: str | os.PathLike) -> None:
    """Write a log back out as CSV (user_id, item_id, timestamp)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["user_id", "item_id", "timestamp"])
        for user, item, timestamp in zip(
            log.user_ids, log.item_ids, log.timestamps
        ):
            writer.writerow([int(user), int(item), float(timestamp)])
