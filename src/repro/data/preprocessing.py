"""Preprocessing pipeline (paper §4.1.1–4.1.2).

* 5-core filtering: iteratively discard users and items with fewer than
  five interactions.
* Chronological per-user sequences with contiguous re-indexed ids
  (item id 0 is reserved for padding; the mask token used by the mask
  augmentation is ``num_items + 1``).
* Leave-one-out split: last item per user is the test target, the one
  before it the validation target, the rest is training data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.log import InteractionLog

MIN_CORE = 5


def five_core_filter(log: InteractionLog, min_count: int = MIN_CORE) -> InteractionLog:
    """Iteratively drop users and items with < ``min_count`` actions.

    Repeats until a fixed point, exactly as in the paper (following
    Rendle et al. and Zhou et al.).
    """
    current = log
    while True:
        user_counts = np.bincount(current.user_ids, minlength=current.user_ids.max() + 1 if len(current) else 1)
        item_counts = np.bincount(current.item_ids, minlength=current.item_ids.max() + 1 if len(current) else 1)
        keep = (user_counts[current.user_ids] >= min_count) & (
            item_counts[current.item_ids] >= min_count
        )
        if keep.all():
            return current
        current = current.select(keep)
        if len(current) == 0:
            return current


def build_sequences(log: InteractionLog) -> tuple[list[np.ndarray], int]:
    """Turn a log into chronological per-user item sequences.

    Users and items are re-indexed contiguously; item ids start at 1 so
    that 0 can serve as the padding id.

    Returns
    -------
    sequences:
        ``sequences[u]`` is the item-id array for (re-indexed) user
        ``u``, sorted by timestamp.
    num_items:
        Size of the re-indexed item vocabulary (ids are ``1..num_items``).
    """
    if len(log) == 0:
        return [], 0
    unique_users, user_index = np.unique(log.user_ids, return_inverse=True)
    unique_items, item_index = np.unique(log.item_ids, return_inverse=True)
    item_ids = item_index + 1  # 0 reserved for padding

    order = np.lexsort((log.timestamps, user_index))
    sorted_users = user_index[order]
    sorted_items = item_ids[order]

    boundaries = np.flatnonzero(np.diff(sorted_users)) + 1
    sequences = np.split(sorted_items, boundaries)
    return [np.asarray(seq, dtype=np.int64) for seq in sequences], len(unique_items)


def leave_one_out_split(
    sequence: np.ndarray,
) -> tuple[np.ndarray, int | None, int | None]:
    """Split one sequence into (train prefix, validation item, test item).

    Sequences shorter than 3 keep everything in training (no targets),
    mirroring common practice.
    """
    sequence = np.asarray(sequence)
    if len(sequence) < 3:
        return sequence, None, None
    return sequence[:-2], int(sequence[-2]), int(sequence[-1])


@dataclass
class SequenceDataset:
    """Per-user sequences with leave-one-out splits.

    Attributes
    ----------
    train_sequences:
        Training prefix for every user (used both for the next-item
        objective and for contrastive augmentation views).
    valid_targets / test_targets:
        Held-out items per user (``None`` when the sequence was too
        short to split).
    num_items:
        Item-vocabulary size; valid item ids are ``1..num_items``.
    name:
        Optional human-readable dataset name.
    """

    train_sequences: list[np.ndarray]
    valid_targets: list[int | None]
    test_targets: list[int | None]
    num_items: int
    name: str = "dataset"
    statistics: dict[str, float] = field(default_factory=dict)
    # Optional categorical side information: ``item_attributes[item_id]``
    # is the attribute index of (re-indexed) item id, with entry 0 (the
    # padding id) set to 0.  ``None`` when the dataset carries no
    # attributes — the paper's main setting.
    item_attributes: np.ndarray | None = None

    @classmethod
    def from_log(
        cls,
        log: InteractionLog,
        name: str = "dataset",
        min_count: int = MIN_CORE,
        raw_item_attributes: np.ndarray | None = None,
    ) -> "SequenceDataset":
        """Apply 5-core filtering, sequence building and splitting.

        ``raw_item_attributes`` optionally maps *raw* item ids to a
        categorical attribute (e.g. a category index); it is re-indexed
        alongside the items and exposed as :attr:`item_attributes`.
        """
        filtered = five_core_filter(log, min_count=min_count)
        sequences, num_items = build_sequences(filtered)
        train, valid, test = [], [], []
        for seq in sequences:
            prefix, valid_item, test_item = leave_one_out_split(seq)
            train.append(prefix)
            valid.append(valid_item)
            test.append(test_item)
        item_attributes = None
        if raw_item_attributes is not None and num_items > 0:
            raw_item_attributes = np.asarray(raw_item_attributes)
            surviving = np.unique(filtered.item_ids)  # raw ids, sorted
            item_attributes = np.zeros(num_items + 1, dtype=np.int64)
            item_attributes[1:] = raw_item_attributes[surviving]
        return cls(
            train_sequences=train,
            valid_targets=valid,
            test_targets=test,
            num_items=num_items,
            name=name,
            statistics=filtered.statistics(),
            item_attributes=item_attributes,
        )

    @property
    def num_users(self) -> int:
        return len(self.train_sequences)

    @property
    def mask_token(self) -> int:
        """Item id of the ``[mask]`` token used by the mask augmentation."""
        return self.num_items + 1

    @property
    def vocab_size(self) -> int:
        """Embedding-table size: items ``1..num_items`` + padding 0 + [mask]."""
        return self.num_items + 2

    def evaluation_users(self, split: str = "test") -> np.ndarray:
        """Indices of users that have a held-out target for ``split``."""
        targets = self.test_targets if split == "test" else self.valid_targets
        return np.asarray(
            [u for u, t in enumerate(targets) if t is not None], dtype=np.int64
        )

    def full_sequence(self, user: int, split: str = "test") -> np.ndarray:
        """Model input for evaluating ``user`` on ``split``.

        For validation this is the training prefix; for test it is the
        prefix plus the validation item (the paper evaluates the test
        item given everything before it).
        """
        prefix = self.train_sequences[user]
        if split == "valid":
            return prefix
        valid_item = self.valid_targets[user]
        if valid_item is None:
            return prefix
        return np.concatenate([prefix, [valid_item]])

    def seen_items(self, user: int) -> np.ndarray:
        """All items the user has interacted with before the test item."""
        parts = [self.train_sequences[user]]
        if self.valid_targets[user] is not None:
            parts.append(np.asarray([self.valid_targets[user]]))
        return np.unique(np.concatenate(parts)) if parts else np.asarray([], dtype=np.int64)

    def subsample_users(self, fraction: float, seed: int = 0) -> "SequenceDataset":
        """Return a copy keeping a random ``fraction`` of users.

        Used by the data-sparsity experiment (Figure 6): the *training*
        population shrinks while the item vocabulary stays fixed.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        rng = np.random.default_rng(seed)
        keep = rng.permutation(self.num_users)[: max(1, int(round(self.num_users * fraction)))]
        keep.sort()
        return SequenceDataset(
            train_sequences=[self.train_sequences[u] for u in keep],
            valid_targets=[self.valid_targets[u] for u in keep],
            test_targets=[self.test_targets[u] for u in keep],
            num_items=self.num_items,
            name=f"{self.name}@{fraction:.0%}",
            statistics=dict(self.statistics),
            item_attributes=self.item_attributes,
        )
