"""Raw interaction logs: flat (user, item, timestamp) triples."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class InteractionLog:
    """A flat implicit-feedback log.

    Attributes
    ----------
    user_ids, item_ids, timestamps:
        Parallel 1-D arrays, one entry per interaction.  Ids are raw
        (arbitrary non-negative integers); timestamps are seconds.
    """

    user_ids: np.ndarray
    item_ids: np.ndarray
    timestamps: np.ndarray

    def __post_init__(self) -> None:
        self.user_ids = np.asarray(self.user_ids, dtype=np.int64)
        self.item_ids = np.asarray(self.item_ids, dtype=np.int64)
        self.timestamps = np.asarray(self.timestamps, dtype=np.float64)
        if not (len(self.user_ids) == len(self.item_ids) == len(self.timestamps)):
            raise ValueError(
                "user_ids, item_ids and timestamps must have equal length, got "
                f"{len(self.user_ids)}, {len(self.item_ids)}, {len(self.timestamps)}"
            )

    def __len__(self) -> int:
        return len(self.user_ids)

    @property
    def num_users(self) -> int:
        """Number of distinct users present in the log."""
        return int(len(np.unique(self.user_ids)))

    @property
    def num_items(self) -> int:
        """Number of distinct items present in the log."""
        return int(len(np.unique(self.item_ids)))

    @property
    def num_actions(self) -> int:
        """Total number of interactions."""
        return len(self)

    @property
    def avg_sequence_length(self) -> float:
        """Mean interactions per user."""
        if len(self) == 0:
            return 0.0
        return len(self) / self.num_users

    @property
    def density(self) -> float:
        """Fraction of the user-item matrix that is observed."""
        if len(self) == 0:
            return 0.0
        return len(self) / (self.num_users * self.num_items)

    def select(self, mask: np.ndarray) -> "InteractionLog":
        """Return a new log restricted to rows where ``mask`` is true."""
        mask = np.asarray(mask, dtype=bool)
        return InteractionLog(
            self.user_ids[mask], self.item_ids[mask], self.timestamps[mask]
        )

    def statistics(self) -> dict[str, float]:
        """Summary statistics matching the columns of the paper's Table 1."""
        return {
            "users": self.num_users,
            "items": self.num_items,
            "actions": self.num_actions,
            "avg_length": self.avg_sequence_length,
            "density": self.density,
        }
