"""Named dataset configurations mirroring the paper's Table 1.

Each :class:`DatasetSpec` holds the raw generator parameters that —
after 5-core filtering — land near the paper's published statistics at
``scale=1.0``.  The ``scale`` knob shrinks users and items together so
tests and benchmarks can run at laptop-friendly sizes while keeping the
structural properties (popularity skew, interest persistence) intact.

Dataset-flavour notes (matching observations in the paper):

* **beauty** has the most strictly ordered sequences (high interest
  persistence) — the paper finds the reorder augmentation helps *less*
  there (Figure 4).
* **sports / toys / yelp** get lower persistence, i.e. more flexible
  order, where the paper finds large reorder rates keep helping.
* **yelp** has the longest average sequences (10.4) and the most users.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.preprocessing import SequenceDataset
from repro.data.synthetic import SyntheticConfig, generate_log


@dataclass(frozen=True)
class DatasetSpec:
    """Raw generator parameters for one named dataset."""

    name: str
    raw_users: int
    raw_items: int
    mean_length: float
    length_dispersion: float
    interest_persistence: float
    ring_affinity: float
    interest_sparsity: float
    popularity_exponent: float
    items_per_interest: int = 260
    paper_users: int = 0
    paper_items: int = 0
    paper_actions: int = 0
    paper_avg_length: float = 0.0

    def config(self, scale: float = 1.0, seed: int = 0) -> SyntheticConfig:
        """Materialize a :class:`SyntheticConfig` at the given scale."""
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        num_users = max(50, int(round(self.raw_users * scale)))
        num_items = max(40, int(round(self.raw_items * scale)))
        num_interests = max(6, num_items // self.items_per_interest)
        return SyntheticConfig(
            num_users=num_users,
            num_items=num_items,
            num_interests=num_interests,
            interest_sparsity=self.interest_sparsity,
            popularity_exponent=self.popularity_exponent,
            mean_length=self.mean_length,
            length_dispersion=self.length_dispersion,
            interest_persistence=self.interest_persistence,
            ring_affinity=self.ring_affinity,
            seed=seed,
        )


DATASETS: dict[str, DatasetSpec] = {
    "beauty": DatasetSpec(
        name="beauty",
        raw_users=30100,
        raw_items=20500,
        mean_length=8.6,
        length_dispersion=1.6,
        interest_persistence=0.85,
        ring_affinity=0.7,
        interest_sparsity=0.12,
        popularity_exponent=0.85,
        paper_users=22363,
        paper_items=12101,
        paper_actions=198502,
        paper_avg_length=8.8,
    ),
    "sports": DatasetSpec(
        name="sports",
        raw_users=30100,
        raw_items=28000,
        mean_length=11.4,
        length_dispersion=1.6,
        interest_persistence=0.62,
        ring_affinity=0.55,
        interest_sparsity=0.10,
        popularity_exponent=0.8,
        paper_users=25598,
        paper_items=18357,
        paper_actions=296337,
        paper_avg_length=8.3,
    ),
    "toys": DatasetSpec(
        name="toys",
        raw_users=27800,
        raw_items=27000,
        mean_length=8.4,
        length_dispersion=1.6,
        interest_persistence=0.66,
        ring_affinity=0.6,
        interest_sparsity=0.12,
        popularity_exponent=0.85,
        paper_users=19412,
        paper_items=11924,
        paper_actions=167597,
        paper_avg_length=8.6,
    ),
    "yelp": DatasetSpec(
        name="yelp",
        raw_users=36500,
        raw_items=32500,
        mean_length=10.4,
        length_dispersion=1.8,
        interest_persistence=0.55,
        ring_affinity=0.5,
        interest_sparsity=0.10,
        popularity_exponent=0.8,
        paper_users=30431,
        paper_items=20033,
        paper_actions=316354,
        paper_avg_length=10.4,
    ),
}


def dataset_names() -> list[str]:
    """Names of all registered datasets, in paper order."""
    return list(DATASETS)


def load_dataset(
    name: str, scale: float = 1.0, seed: int = 0, min_count: int = 5
) -> SequenceDataset:
    """Generate + preprocess a named dataset.

    Parameters
    ----------
    name:
        One of ``beauty``, ``sports``, ``toys``, ``yelp``.
    scale:
        Fraction of the full-size user/item population to generate.
    seed:
        Simulator seed (deterministic output).
    min_count:
        5-core threshold (paper default 5).
    """
    if name not in DATASETS:
        raise KeyError(f"unknown dataset '{name}'; available: {dataset_names()}")
    spec = DATASETS[name]
    log = generate_log(spec.config(scale=scale, seed=seed))
    return SequenceDataset.from_log(log, name=spec.name, min_count=min_count)
