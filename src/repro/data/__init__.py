"""Dataset substrate for the CL4SRec reproduction.

The paper evaluates on Amazon Beauty / Sports / Toys and Yelp.  Those
downloads are unavailable in this offline environment, so
:mod:`repro.data.synthetic` provides a latent-interest generative
simulator of implicit-feedback logs, with per-dataset configurations in
:mod:`repro.data.registry` calibrated to the paper's Table 1 statistics.
The rest of the pipeline — 5-core filtering, chronological per-user
sequences, leave-one-out splits, padded batching, negative sampling —
follows the paper's §4.1 exactly and works identically on real logs.
"""

from repro.data.io import (
    MalformedRowsSkipped,
    read_csv_log,
    read_jsonl_log,
    write_csv_log,
)
from repro.data.log import InteractionLog
from repro.data.preprocessing import (
    SequenceDataset,
    build_sequences,
    five_core_filter,
    leave_one_out_split,
)
from repro.data.loaders import (
    ContrastiveBatch,
    ContrastiveBatchLoader,
    NegativeSampler,
    NextItemBatch,
    NextItemBatchLoader,
    PopularityNegativeSampler,
    pad_left,
)
from repro.data.pipeline import (
    PIPELINES,
    CyclingStream,
    PaddedViews,
    Prefetcher,
    batch_stream,
    build_padded_views,
    padded_views,
    validate_pipeline,
)
from repro.data.registry import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    load_dataset,
)
from repro.data.splits import TemporalSplit, next_item_events, temporal_split
from repro.data.stats import dataset_report, markov_predictability, popularity_gini
from repro.data.synthetic import (
    SyntheticConfig,
    generate_log,
    generate_log_with_attributes,
)

__all__ = [
    "DATASETS",
    "PIPELINES",
    "ContrastiveBatch",
    "ContrastiveBatchLoader",
    "CyclingStream",
    "DatasetSpec",
    "InteractionLog",
    "MalformedRowsSkipped",
    "NegativeSampler",
    "NextItemBatch",
    "NextItemBatchLoader",
    "PaddedViews",
    "PopularityNegativeSampler",
    "Prefetcher",
    "SequenceDataset",
    "SyntheticConfig",
    "TemporalSplit",
    "batch_stream",
    "build_padded_views",
    "padded_views",
    "validate_pipeline",
    "build_sequences",
    "dataset_names",
    "dataset_report",
    "five_core_filter",
    "markov_predictability",
    "popularity_gini",
    "generate_log",
    "generate_log_with_attributes",
    "leave_one_out_split",
    "load_dataset",
    "next_item_events",
    "pad_left",
    "read_csv_log",
    "temporal_split",
    "read_jsonl_log",
    "write_csv_log",
]
