"""Batching, padding and negative sampling for sequence training.

Sequences are **left-padded** to the maximum length ``T`` so that the
most recent item always sits at the last position — the position whose
hidden state is the user representation (paper Eq. 13).

Both loaders build their padded matrices by fancy-indexing the
dataset's precomputed views (:func:`repro.data.pipeline.padded_views`)
instead of looping over users per batch.  The ``pipeline`` switch
selects how the *stochastic* part of a batch is produced:

* ``"reference"`` (default) — augmentation and sampling draw from the
  caller's generator one sequence at a time, bit-compatible with the
  original scalar implementation (the golden fixtures pin this path).
* ``"vectorized"`` — augmentation runs in matrix form
  (:mod:`repro.augment.batched`) and all loader randomness moves to a
  dedicated child stream, which makes the loader safe to drive from a
  background :class:`~repro.data.pipeline.Prefetcher` thread.

See ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.augment.batched import BatchPairSampler, spawn_stream
from repro.augment.compose import PairSampler
from repro.data.pipeline import padded_views, validate_pipeline
from repro.data.preprocessing import SequenceDataset


def _shard_users(
    users: np.ndarray, worker_shard: tuple[int, int] | None
) -> np.ndarray:
    """Deterministic round-robin split of the eligible-user list.

    ``worker_shard=(w, n)`` keeps every n-th user starting at *w* —
    the partition data-parallel training workers draw their private
    micro-batches from.  An empty shard is allowed (more workers than
    eligible users): the worker simply contributes no batches.  The
    global no-eligible-users check runs *before* sharding, so the
    loader's existing error behaviour is unchanged.
    """
    if worker_shard is None:
        return users
    worker, count = worker_shard
    if not 0 <= worker < count:
        raise ValueError(
            f"worker_shard must be (worker, count) with 0 <= worker < "
            f"count, got {worker_shard!r}"
        )
    return users[worker::count]


def pad_left(sequence: np.ndarray, length: int, pad_value: int = 0) -> np.ndarray:
    """Left-pad (or left-truncate) ``sequence`` to exactly ``length``.

    Truncation keeps the *last* ``length`` items, per paper Eq. (7).
    """
    sequence = np.asarray(sequence, dtype=np.int64)
    if len(sequence) >= length:
        return sequence[-length:]
    out = np.full(length, pad_value, dtype=np.int64)
    if len(sequence):
        out[-len(sequence) :] = sequence
    return out


class NegativeSampler:
    """Uniform negative sampling over the item vocabulary.

    Draws ids in ``1..num_items`` that avoid a per-row forbidden item
    (the positive).  Collisions are re-drawn; with vocabularies in the
    thousands a couple of rounds suffice.
    """

    def __init__(self, num_items: int, rng: np.random.Generator) -> None:
        if num_items < 2:
            raise ValueError("need at least 2 items to sample negatives")
        self.num_items = num_items
        self._rng = rng

    def _draw(self, count: int) -> np.ndarray:
        return self._rng.integers(1, self.num_items + 1, size=count)

    def sample(self, positives: np.ndarray) -> np.ndarray:
        """Return one negative per entry of ``positives`` (same shape)."""
        positives = np.asarray(positives)
        negatives = self._draw(positives.size).reshape(positives.shape)
        for __ in range(100):
            clash = negatives == positives
            if not clash.any():
                break
            negatives[clash] = self._draw(int(clash.sum()))
        # Extremely skewed sampling distributions (e.g. popularity
        # weighting where the positive IS the blockbuster) can exhaust
        # the redraw budget; shift the survivors deterministically.
        clash = negatives == positives
        if clash.any():
            negatives[clash] = negatives[clash] % self.num_items + 1
        return negatives


class PopularityNegativeSampler(NegativeSampler):
    """Popularity-weighted negative sampling.

    Draws negatives proportionally to ``count(item)^alpha`` (word2vec's
    classic 0.75 by default).  Harder negatives than uniform: popular
    items the user *didn't* choose are more informative contrasts.

    Parameters
    ----------
    item_counts:
        Training interaction count per item id, length
        ``num_items + 1`` (index 0 = padding, ignored).
    alpha:
        Popularity exponent; 0 recovers uniform sampling.
    smoothing:
        Added to every count so unseen items stay sampleable.
    """

    def __init__(
        self,
        item_counts: np.ndarray,
        rng: np.random.Generator,
        alpha: float = 0.75,
        smoothing: float = 1.0,
    ) -> None:
        item_counts = np.asarray(item_counts, dtype=np.float64)
        if item_counts.ndim != 1 or len(item_counts) < 3:
            raise ValueError(
                "item_counts must be 1-D of length num_items + 1 (>= 3)"
            )
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        super().__init__(len(item_counts) - 1, rng)
        weights = (item_counts[1:] + smoothing) ** alpha
        self._cumulative = np.cumsum(weights / weights.sum())
        self.alpha = alpha

    @classmethod
    def from_sequences(
        cls,
        sequences,
        num_items: int,
        rng: np.random.Generator,
        alpha: float = 0.75,
    ) -> "PopularityNegativeSampler":
        """Build from training sequences (counts computed here)."""
        counts = np.zeros(num_items + 1, dtype=np.float64)
        for sequence in sequences:
            np.add.at(counts, np.asarray(sequence), 1.0)
        return cls(counts, rng, alpha=alpha)

    def _draw(self, count: int) -> np.ndarray:
        draws = self._rng.random(count)
        return np.searchsorted(self._cumulative, draws) + 1


@dataclass
class NextItemBatch:
    """One supervised next-item training batch.

    ``inputs[b, t]`` is the item at step *t* (0 = padding), ``targets``
    the item at step *t+1*, ``negatives`` a sampled non-interacted item,
    and ``mask`` is 1.0 where a real prediction exists.
    """

    users: np.ndarray
    inputs: np.ndarray
    targets: np.ndarray
    negatives: np.ndarray
    mask: np.ndarray


class NextItemBatchLoader:
    """Yields shuffled :class:`NextItemBatch` epochs from a dataset.

    Batch matrices are fancy-indexed rows of the dataset's precomputed
    padded views — bit-identical to per-batch ``pad_left`` loops but
    built in O(batch) numpy work.  With ``pipeline="vectorized"`` the
    loader additionally moves shuffling and negative sampling onto a
    private child stream so a background prefetcher can drive it
    without racing the model's generator.
    """

    def __init__(
        self,
        dataset: SequenceDataset,
        max_length: int,
        batch_size: int,
        rng: np.random.Generator,
        min_sequence_length: int = 2,
        negative_sampler: NegativeSampler | None = None,
        pipeline: str = "reference",
        obs=None,
        worker_shard: tuple[int, int] | None = None,
    ) -> None:
        self.dataset = dataset
        self.max_length = max_length
        self.batch_size = batch_size
        self.pipeline = validate_pipeline(pipeline)
        self._obs = obs
        self._views = padded_views(dataset, max_length)
        if pipeline == "vectorized":
            # Private stream: the prefetcher's worker thread must never
            # share a generator with the training thread (dropout).
            self._rng = spawn_stream(rng)
            if negative_sampler is not None:
                negative_sampler._rng = self._rng
        else:
            self._rng = rng
        self._sampler = (
            negative_sampler
            if negative_sampler is not None
            else NegativeSampler(dataset.num_items, self._rng)
        )
        self._users = np.asarray(
            [
                u
                for u, seq in enumerate(dataset.train_sequences)
                if len(seq) >= min_sequence_length
            ],
            dtype=np.int64,
        )
        if len(self._users) == 0:
            raise ValueError("no user has a long enough training sequence")
        self._users = _shard_users(self._users, worker_shard)

    @property
    def num_batches(self) -> int:
        return int(np.ceil(len(self._users) / self.batch_size))

    def epoch(self) -> Iterator[NextItemBatch]:
        """One pass over all eligible users, shuffled."""
        order = self._rng.permutation(self._users)
        for start in range(0, len(order), self.batch_size):
            built_at = time.perf_counter()
            batch = self._build(order[start : start + self.batch_size])
            if self._obs is not None:
                self._obs.observe(
                    "data.batch_build_seconds", time.perf_counter() - built_at
                )
            yield batch

    def _build(self, users: np.ndarray) -> NextItemBatch:
        inputs = self._views.inputs[users]
        targets = self._views.targets[users]
        mask = (targets > 0).astype(np.float64)
        negatives = self._sampler.sample(targets)
        # Padded positions carry the pad id (0), never a real item; the
        # masked BCE guarantees they contribute nothing to the loss or
        # gradients either way (asserted in tests/data/test_loaders.py).
        negatives[mask == 0.0] = 0
        return NextItemBatch(users, inputs, targets, negatives, mask)


@dataclass
class ContrastiveBatch:
    """Two augmented views per user, left-padded (paper §3.2.1)."""

    users: np.ndarray
    view_a: np.ndarray
    view_b: np.ndarray


class ContrastiveBatchLoader:
    """Yields :class:`ContrastiveBatch` epochs from augmented sequences.

    ``augmenter`` is any callable ``(sequence, rng) -> (view_a, view_b)``
    — typically :class:`repro.augment.compose.PairSampler`.

    With ``pipeline="vectorized"`` the augmentation stage — the wall-
    time sink of a contrastive epoch — runs in matrix form: a scalar
    ``PairSampler`` is lifted to a
    :class:`~repro.augment.batched.BatchPairSampler` (a prepared
    ``BatchPairSampler`` is also accepted directly), views are produced
    for all rows of a batch in a handful of numpy calls over the
    dataset's precomputed padded matrix, and every random draw comes
    from a private child stream so a background prefetcher can run the
    epoch without racing the training thread.  Any other augmenter
    callable falls back to per-row application but still benefits from
    precomputed padding and prefetching.
    """

    def __init__(
        self,
        dataset: SequenceDataset,
        augmenter,
        max_length: int,
        batch_size: int,
        rng: np.random.Generator,
        min_sequence_length: int = 3,
        pipeline: str = "reference",
        obs=None,
        worker_shard: tuple[int, int] | None = None,
    ) -> None:
        self.dataset = dataset
        self.augmenter = augmenter
        self.max_length = max_length
        self.batch_size = batch_size
        self.pipeline = validate_pipeline(pipeline)
        self._obs = obs
        self._batched: BatchPairSampler | None = None
        if pipeline == "vectorized":
            self._rng = spawn_stream(rng)
            self._views = padded_views(dataset, max_length)
            if isinstance(augmenter, BatchPairSampler):
                self._batched = augmenter
            elif isinstance(augmenter, PairSampler):
                self._batched = BatchPairSampler.from_scalar(augmenter)
        else:
            self._rng = rng
            self._views = None
        self._users = np.asarray(
            [
                u
                for u, seq in enumerate(dataset.train_sequences)
                if len(seq) >= min_sequence_length
            ],
            dtype=np.int64,
        )
        if len(self._users) == 0:
            raise ValueError("no user has a long enough training sequence")
        self._users = _shard_users(self._users, worker_shard)

    @property
    def num_batches(self) -> int:
        return int(np.ceil(len(self._users) / self.batch_size))

    def epoch(self) -> Iterator[ContrastiveBatch]:
        """One shuffled pass; each user contributes one positive pair."""
        order = self._rng.permutation(self._users)
        for start in range(0, len(order), self.batch_size):
            users = order[start : start + self.batch_size]
            if len(users) < 2:
                continue  # a contrastive batch needs at least one negative
            built_at = time.perf_counter()
            batch = self._build(users)
            if self._obs is not None:
                self._obs.observe(
                    "data.batch_build_seconds", time.perf_counter() - built_at
                )
            yield batch

    def _build(self, users: np.ndarray) -> ContrastiveBatch:
        if self._batched is not None:
            padded = self._views.sequences[users]
            lengths = self._views.lengths[users]
            (view_a, __), (view_b, __) = self._batched(padded, lengths, self._rng)
            return ContrastiveBatch(users, view_a, view_b)
        t = self.max_length
        view_a = np.zeros((len(users), t), dtype=np.int64)
        view_b = np.zeros((len(users), t), dtype=np.int64)
        if self._views is not None:  # vectorized padding, scalar augmenter
            padded, lengths = self._views.sequences[users], self._views.lengths[users]
            rows = ((padded[i, t - lengths[i]:]) for i in range(len(users)))
        else:
            rows = (self.dataset.train_sequences[user][-t:] for user in users)
        for row, seq in enumerate(rows):
            a, b = self.augmenter(seq, self._rng)
            view_a[row] = pad_left(a, t)
            view_b[row] = pad_left(b, t)
        return ContrastiveBatch(users, view_a, view_b)


def batch_sequences(
    sequences: Sequence[np.ndarray], max_length: int
) -> tuple[np.ndarray, np.ndarray]:
    """Left-pad a list of sequences into a dense batch.

    Returns the padded integer matrix and a boolean padding mask
    (``True`` where the position is padding).
    """
    batch = np.zeros((len(sequences), max_length), dtype=np.int64)
    for row, seq in enumerate(sequences):
        batch[row] = pad_left(seq, max_length)
    return batch, batch == 0
