"""Structural diagnostics of interaction datasets.

DESIGN.md argues the synthetic generator preserves the structural
properties the paper's comparisons rest on — popularity skew,
sequential predictability, repeat consumption.  This module measures
those properties on any :class:`SequenceDataset` (synthetic or real),
so the claim is checkable rather than asserted.
"""

from __future__ import annotations

import numpy as np

from repro.data.preprocessing import SequenceDataset


def sequence_length_stats(dataset: SequenceDataset) -> dict[str, float]:
    """Distribution summary of training-sequence lengths."""
    lengths = np.asarray([len(s) for s in dataset.train_sequences], dtype=np.float64)
    if len(lengths) == 0:
        raise ValueError("dataset has no users")
    return {
        "mean": float(lengths.mean()),
        "median": float(np.median(lengths)),
        "p90": float(np.quantile(lengths, 0.9)),
        "max": float(lengths.max()),
    }


def item_popularity(dataset: SequenceDataset) -> np.ndarray:
    """Training interaction count per item id (index 0 = padding)."""
    counts = np.zeros(dataset.num_items + 1, dtype=np.float64)
    for sequence in dataset.train_sequences:
        np.add.at(counts, sequence, 1.0)
    return counts


def popularity_gini(dataset: SequenceDataset) -> float:
    """Gini coefficient of item popularity (0 = uniform, →1 = skewed)."""
    counts = np.sort(item_popularity(dataset)[1:])
    total = counts.sum()
    if total == 0:
        return 0.0
    n = len(counts)
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * counts).sum()) / (n * total) - (n + 1) / n)


def repeat_consumption_rate(dataset: SequenceDataset) -> float:
    """Fraction of training interactions that repeat an earlier item.

    Real e-commerce logs sit around 10–40%; a generator with 0% would
    make the evaluator's seen-item masking vacuous.
    """
    repeats = 0
    total = 0
    for sequence in dataset.train_sequences:
        seen: set[int] = set()
        for item in sequence:
            if int(item) in seen:
                repeats += 1
            seen.add(int(item))
            total += 1
    if total == 0:
        raise ValueError("dataset has no interactions")
    return repeats / total


def markov_predictability(dataset: SequenceDataset, top_k: int = 1) -> float:
    """Accuracy of a first-order Markov oracle on training bigrams.

    For each (previous → next) transition, predict the ``top_k`` most
    frequent successors of the previous item (fit on the same data —
    an *upper-bound-ish* sanity measure of sequential signal).  Uniform
    random data scores ≈ ``top_k / num_items``; structured sequences
    score orders of magnitude higher.
    """
    successors: dict[int, dict[int, int]] = {}
    transitions: list[tuple[int, int]] = []
    for sequence in dataset.train_sequences:
        for left, right in zip(sequence[:-1], sequence[1:]):
            left, right = int(left), int(right)
            successors.setdefault(left, {})
            successors[left][right] = successors[left].get(right, 0) + 1
            transitions.append((left, right))
    if not transitions:
        raise ValueError("dataset has no transitions")
    hits = 0
    top = {
        left: sorted(counts, key=counts.get, reverse=True)[:top_k]
        for left, counts in successors.items()
    }
    for left, right in transitions:
        if right in top[left]:
            hits += 1
    return hits / len(transitions)


def dataset_report(dataset: SequenceDataset) -> dict[str, float]:
    """All structural diagnostics as one flat dict."""
    lengths = sequence_length_stats(dataset)
    return {
        "users": float(dataset.num_users),
        "items": float(dataset.num_items),
        "mean_length": lengths["mean"],
        "median_length": lengths["median"],
        "popularity_gini": popularity_gini(dataset),
        "repeat_rate": repeat_consumption_rate(dataset),
        "markov_top1": markov_predictability(dataset, top_k=1),
        "markov_top10": markov_predictability(dataset, top_k=10),
    }
