"""Latent-interest simulator of implicit-feedback interaction logs.

The paper evaluates on Amazon Beauty/Sports/Toys and Yelp; those
downloads are unavailable offline, so this module generates logs with
the structural properties the paper's comparisons rest on:

* **Power-law item popularity** — each latent interest cluster holds a
  Zipf-distributed catalogue, so Pop is a meaningful (weak) baseline.
* **Long-term user preference** — each user draws a sparse Dirichlet
  distribution over interest clusters, giving matrix-factorization
  baselines signal to latch onto.
* **Sequential structure** — a user's *current* interest follows a
  Markov chain over clusters with strong self-persistence plus a ring
  affinity (cluster *k* tends to lead to *k+1*), so sequence models
  beat non-sequential ones and augmentation-invariant representations
  transfer to next-item prediction.
* **Order flexibility knob** — ``interest_persistence`` controls how
  strictly ordered sequences are; registry configs vary it per dataset
  to mirror the paper's Figure-4 observation that reorder augmentation
  helps more on Sports/Toys/Yelp than on Beauty.

Generation is vectorized across users (one loop over time steps) so a
full-scale dataset (~300k events) builds in a couple of seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.log import InteractionLog


@dataclass
class SyntheticConfig:
    """Parameters of the generative simulator.

    Attributes
    ----------
    num_users, num_items:
        Raw counts before 5-core filtering.
    num_interests:
        Number of latent interest clusters ``K``.
    interest_sparsity:
        Dirichlet concentration for user preference vectors; smaller
        values give each user fewer dominant interests.
    popularity_exponent:
        Zipf exponent for within-cluster item popularity.
    mean_length, length_dispersion:
        Mean and dispersion of the per-user sequence length (negative
        binomial); lengths are clipped below at ``min_length``.
    min_length:
        Minimum generated sequence length (before 5-core).
    interest_persistence:
        Probability mass on staying in the current interest cluster at
        each step.  High values make sequences strictly ordered runs.
    ring_affinity:
        Extra transition mass from cluster ``k`` to ``k+1 (mod K)``,
        creating a predictable drift between interests.
    preference_mix:
        Exponent mixing the user's long-term preference into each
        transition (0 = pure Markov, 1 = fully preference-weighted).
    seed:
        Generator seed; the whole log is deterministic given it.
    """

    num_users: int = 1000
    num_items: int = 500
    num_interests: int = 20
    interest_sparsity: float = 0.15
    popularity_exponent: float = 1.05
    mean_length: float = 9.0
    length_dispersion: float = 2.0
    min_length: int = 3
    interest_persistence: float = 0.75
    ring_affinity: float = 0.6
    preference_mix: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_users <= 0 or self.num_items <= 0:
            raise ValueError("num_users and num_items must be positive")
        if self.num_interests <= 1:
            raise ValueError("num_interests must be at least 2")
        if self.num_items < self.num_interests:
            raise ValueError("need at least one item per interest cluster")
        if not 0.0 <= self.interest_persistence < 1.0:
            raise ValueError("interest_persistence must be in [0, 1)")
        if self.mean_length <= self.min_length:
            raise ValueError("mean_length must exceed min_length")


@dataclass
class _World:
    """Sampled global state: cluster assignments and transition matrix."""

    item_cluster: np.ndarray
    cluster_items: list[np.ndarray]
    cluster_cumpop: list[np.ndarray]
    transition: np.ndarray
    user_preferences: np.ndarray = field(default=None)  # type: ignore[assignment]


def _build_world(config: SyntheticConfig, rng: np.random.Generator) -> _World:
    k = config.num_interests
    # Round-robin item assignment keeps clusters balanced.
    item_cluster = np.arange(config.num_items) % k
    cluster_items = [np.flatnonzero(item_cluster == c) for c in range(k)]
    cluster_cumpop = []
    for items in cluster_items:
        ranks = np.arange(1, len(items) + 1, dtype=np.float64)
        pop = ranks ** (-config.popularity_exponent)
        cluster_cumpop.append(np.cumsum(pop / pop.sum()))

    # Interest transition matrix: persistence + ring drift + uniform noise.
    transition = np.full((k, k), (1.0 - config.interest_persistence) * 0.2 / k)
    remaining = 1.0 - config.interest_persistence
    for c in range(k):
        transition[c, c] += config.interest_persistence
        transition[c, (c + 1) % k] += remaining * config.ring_affinity
    transition /= transition.sum(axis=1, keepdims=True)

    preferences = rng.dirichlet(
        np.full(k, config.interest_sparsity), size=config.num_users
    )
    return _World(item_cluster, cluster_items, cluster_cumpop, transition, preferences)


def _sample_lengths(config: SyntheticConfig, rng: np.random.Generator) -> np.ndarray:
    """Negative-binomial sequence lengths with the configured mean."""
    r = config.length_dispersion
    mean_extra = config.mean_length - config.min_length
    p = r / (r + mean_extra)
    extra = rng.negative_binomial(r, p, size=config.num_users)
    return (config.min_length + extra).astype(np.int64)


def _sample_items_for_clusters(
    clusters: np.ndarray, world: _World, rng: np.random.Generator
) -> np.ndarray:
    """Draw one item per user from that user's current cluster."""
    out = np.empty(len(clusters), dtype=np.int64)
    draws = rng.random(len(clusters))
    for c in np.unique(clusters):
        members = clusters == c
        positions = np.searchsorted(world.cluster_cumpop[c], draws[members])
        out[members] = world.cluster_items[c][positions]
    return out


def generate_log_with_attributes(
    config: SyntheticConfig,
) -> tuple[InteractionLog, np.ndarray]:
    """Generate a log plus the items' latent-cluster attributes.

    Returns ``(log, attributes)`` where ``attributes[raw_item_id]`` is
    the item's interest-cluster index — the categorical side information
    an S3-Rec-style model consumes.  The log itself is identical to
    :func:`generate_log` for the same config.
    """
    log = generate_log(config)
    attributes = np.arange(config.num_items) % config.num_interests
    return log, attributes.astype(np.int64)


def generate_log(config: SyntheticConfig) -> InteractionLog:
    """Generate a full interaction log from ``config``.

    Returns a raw (pre-5-core) :class:`InteractionLog`; run it through
    :func:`repro.data.preprocessing.five_core_filter` to match the
    paper's preprocessing.
    """
    rng = np.random.default_rng(config.seed)
    world = _build_world(config, rng)
    lengths = _sample_lengths(config, rng)
    max_length = int(lengths.max())

    # Per-user mixed transition kernel support: preference^mix.
    pref_weight = world.user_preferences**config.preference_mix
    pref_weight /= pref_weight.sum(axis=1, keepdims=True)

    # Initial interest ~ user preference.
    cum_pref = np.cumsum(world.user_preferences, axis=1)
    current = (cum_pref > rng.random((config.num_users, 1))).argmax(axis=1)

    users_out: list[np.ndarray] = []
    items_out: list[np.ndarray] = []
    steps_out: list[np.ndarray] = []
    all_users = np.arange(config.num_users)

    for t in range(max_length):
        active = lengths > t
        if not active.any():
            break
        active_users = all_users[active]
        items = _sample_items_for_clusters(current[active], world, rng)
        users_out.append(active_users)
        items_out.append(items)
        steps_out.append(np.full(len(active_users), t, dtype=np.int64))

        # Advance interests: Markov row blended with user preference.
        probs = world.transition[current[active]] * pref_weight[active]
        probs /= probs.sum(axis=1, keepdims=True)
        cum = np.cumsum(probs, axis=1)
        current[active] = (cum > rng.random((len(active_users), 1))).argmax(axis=1)

    user_ids = np.concatenate(users_out)
    item_ids = np.concatenate(items_out)
    steps = np.concatenate(steps_out)

    # Timestamps: per-user start offset plus per-step gaps; strictly
    # increasing within a user so chronological sorting is well-defined.
    start = rng.uniform(0.0, 1e6, size=config.num_users)
    gaps = rng.exponential(3600.0, size=len(user_ids)) + 1.0
    timestamps = start[user_ids] + steps * 86400.0 + gaps

    return InteractionLog(user_ids, item_ids, timestamps)


# ----------------------------------------------------------------------
# Serving-traffic synthesis (the load-test harness's request source)
# ----------------------------------------------------------------------
@dataclass
class TrafficConfig:
    """Knobs for a deterministic, replayable serving-traffic trace.

    The trace models production-shaped request streams against the
    recommendation server (``docs/SCALING.md``): Zipf-skewed *hot*
    users identified by dataset user id (they revisit, so the
    representation cache matters), a long tail of *cold* visitors who
    appear exactly once as raw item-id ``sequence`` requests (so the
    distinct-identity count can exceed the catalogue's user count by
    orders of magnitude), Markov-modulated calm/burst arrival times,
    and a single/batch request mix.

    Two-level determinism: the event stream (arrivals, hot/cold picks,
    batch sizes) comes from one sequential generator seeded with
    ``seed``, while each identity's session items come from a
    counter-based ``Philox`` stream keyed by ``(seed, identity)`` —
    order-independent, so a hot user's session is the same bytes no
    matter where in the trace it appears, and regenerating a trace is
    always byte-identical (property-tested).
    """

    #: Total HTTP events (a batch counts as one event).
    num_events: int = 10_000
    #: Dataset user-id space hot users are drawn from (must not exceed
    #: the serving dataset's ``num_users`` when replayed).
    user_pool: int = 1000
    #: Item-id space for cold-visitor sequences, ids in ``[1, num_items]``
    #: (0 is the padding id and never appears).
    num_items: int = 500
    #: Size of the Zipf head of returning users.
    hot_users: int = 200
    #: Probability that a sequence in the stream belongs to a hot user.
    hot_fraction: float = 0.6
    #: Zipf exponent for hot-user popularity (rank ** -s).
    zipf_exponent: float = 1.1
    #: Probability an event is a ``/recommend/batch`` call.
    batch_fraction: float = 0.3
    #: Geometric mean size of batch events (clamped to ``max_batch``).
    mean_batch: float = 8.0
    max_batch: int = 64
    #: Cold-visitor session lengths: ``min_session`` plus a geometric
    #: tail with mean ``mean_session``.
    mean_session: float = 9.0
    min_session: int = 2
    max_session: int = 50
    #: Top-k requested by every payload.
    k: int = 10
    #: Arrival process: exponential inter-arrivals at ``calm_qps``,
    #: Markov-switched into bursts at ``burst_qps``.
    calm_qps: float = 200.0
    burst_qps: float = 2000.0
    burst_enter_prob: float = 0.02
    burst_exit_prob: float = 0.10
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_events < 1:
            raise ValueError(f"num_events must be positive, got {self.num_events}")
        for name in ("user_pool", "num_items", "hot_users", "max_batch",
                     "min_session", "max_session", "k"):
            if getattr(self, name) < 1:
                raise ValueError(
                    f"{name} must be positive, got {getattr(self, name)}"
                )
        for name in ("hot_fraction", "batch_fraction",
                     "burst_enter_prob", "burst_exit_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in ("zipf_exponent", "mean_batch", "mean_session",
                     "calm_qps", "burst_qps"):
            if getattr(self, name) <= 0:
                raise ValueError(
                    f"{name} must be positive, got {getattr(self, name)}"
                )
        if self.min_session > self.max_session:
            raise ValueError(
                f"min_session {self.min_session} exceeds "
                f"max_session {self.max_session}"
            )


class TrafficTrace:
    """A lazily generated, deterministic stream of serving events.

    Events are dicts ``{"index", "arrival_s", "kind", "requests"}``
    where ``kind`` is ``"single"`` or ``"batch"`` and every entry of
    ``requests`` is a JSON-ready payload (``{"user", "k"}`` for hot
    users, ``{"sequence", "k"}`` for cold visitors).  Iteration
    regenerates from the seed each time — O(1) memory for
    multi-million-identity traces, and byte-identical on every pass.
    """

    def __init__(self, config: TrafficConfig) -> None:
        self.config = config
        ranks = np.arange(1, config.hot_users + 1, dtype=np.float64)
        self._zipf_cdf = np.cumsum(ranks ** -config.zipf_exponent)
        self._zipf_cdf /= self._zipf_cdf[-1]

    # -- identity/session content (order-independent) -------------------
    def _session_rng(self, identity: int) -> np.random.Generator:
        return np.random.Generator(
            np.random.Philox(key=[self.config.seed & 0xFFFFFFFFFFFFFFFF,
                                  identity])
        )

    def session_items(self, identity: int) -> list[int]:
        """The item-id session for one identity (ids in [1, num_items])."""
        config = self.config
        rng = self._session_rng(identity)
        extra = rng.geometric(
            1.0 / max(config.mean_session - config.min_session + 1.0, 1.0)
        ) - 1
        length = int(min(config.min_session + extra, config.max_session))
        return [int(x) for x in
                rng.integers(1, config.num_items + 1, size=length)]

    # -- the event stream (sequential, regenerated per iteration) -------
    def events(self, limit: int | None = None):
        """Yield events in arrival order (fresh generator every call)."""
        config = self.config
        rng = np.random.default_rng(config.seed)
        total = config.num_events if limit is None else min(
            limit, config.num_events
        )
        cold_next = config.hot_users  # cold identities appear exactly once
        arrival = 0.0
        burst = False
        for index in range(total):
            burst = (
                rng.random() >= config.burst_exit_prob if burst
                else rng.random() < config.burst_enter_prob
            )
            rate = config.burst_qps if burst else config.calm_qps
            arrival += float(rng.exponential(1.0 / rate))
            if rng.random() < config.batch_fraction:
                kind = "batch"
                size = int(min(rng.geometric(1.0 / config.mean_batch),
                               config.max_batch))
            else:
                kind = "single"
                size = 1
            payloads = []
            for __ in range(size):
                if rng.random() < config.hot_fraction:
                    rank = int(np.searchsorted(self._zipf_cdf, rng.random()))
                    identity = min(rank, config.hot_users - 1)
                    payloads.append({
                        "user": identity % config.user_pool,
                        "k": config.k,
                    })
                else:
                    identity = cold_next
                    cold_next += 1
                    payloads.append({
                        "sequence": self.session_items(identity),
                        "k": config.k,
                    })
            yield {
                "index": index,
                "arrival_s": arrival,
                "kind": kind,
                "requests": payloads,
            }

    def __iter__(self):
        return self.events()

    def summary(self, limit: int | None = None) -> dict:
        """One cheap pass counting identities and sequences.

        ``distinct_users`` counts *identities*: distinct hot user ids
        plus every cold visitor (each appears exactly once by
        construction) — the number the serving-scale benchmark gates on.
        """
        hot_ids: set[int] = set()
        cold = sequences = events = batches = 0
        for event in self.events(limit):
            events += 1
            batches += event["kind"] == "batch"
            for payload in event["requests"]:
                sequences += 1
                if "user" in payload:
                    hot_ids.add(payload["user"])
                else:
                    cold += 1
        return {
            "events": events,
            "batches": batches,
            "sequences": sequences,
            "distinct_users": len(hot_ids) + cold,
            "hot_user_ids": len(hot_ids),
            "cold_users": cold,
            "duration_s": None,  # replay pacing decides wall time
        }

    def to_jsonl(self, path, limit: int | None = None) -> int:
        """Write the trace as JSON lines (byte-stable across runs)."""
        import json

        written = 0
        with open(path, "w", encoding="utf-8") as handle:
            for event in self.events(limit):
                handle.write(json.dumps(event, sort_keys=True) + "\n")
                written += 1
        return written


def synthesize_trace(config: TrafficConfig | None = None,
                     **overrides) -> TrafficTrace:
    """Build a :class:`TrafficTrace` (kwargs override config fields)."""
    if config is None:
        config = TrafficConfig(**overrides)
    elif overrides:
        from dataclasses import replace

        config = replace(config, **overrides)
    return TrafficTrace(config)
