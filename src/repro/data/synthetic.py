"""Latent-interest simulator of implicit-feedback interaction logs.

The paper evaluates on Amazon Beauty/Sports/Toys and Yelp; those
downloads are unavailable offline, so this module generates logs with
the structural properties the paper's comparisons rest on:

* **Power-law item popularity** — each latent interest cluster holds a
  Zipf-distributed catalogue, so Pop is a meaningful (weak) baseline.
* **Long-term user preference** — each user draws a sparse Dirichlet
  distribution over interest clusters, giving matrix-factorization
  baselines signal to latch onto.
* **Sequential structure** — a user's *current* interest follows a
  Markov chain over clusters with strong self-persistence plus a ring
  affinity (cluster *k* tends to lead to *k+1*), so sequence models
  beat non-sequential ones and augmentation-invariant representations
  transfer to next-item prediction.
* **Order flexibility knob** — ``interest_persistence`` controls how
  strictly ordered sequences are; registry configs vary it per dataset
  to mirror the paper's Figure-4 observation that reorder augmentation
  helps more on Sports/Toys/Yelp than on Beauty.

Generation is vectorized across users (one loop over time steps) so a
full-scale dataset (~300k events) builds in a couple of seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.log import InteractionLog


@dataclass
class SyntheticConfig:
    """Parameters of the generative simulator.

    Attributes
    ----------
    num_users, num_items:
        Raw counts before 5-core filtering.
    num_interests:
        Number of latent interest clusters ``K``.
    interest_sparsity:
        Dirichlet concentration for user preference vectors; smaller
        values give each user fewer dominant interests.
    popularity_exponent:
        Zipf exponent for within-cluster item popularity.
    mean_length, length_dispersion:
        Mean and dispersion of the per-user sequence length (negative
        binomial); lengths are clipped below at ``min_length``.
    min_length:
        Minimum generated sequence length (before 5-core).
    interest_persistence:
        Probability mass on staying in the current interest cluster at
        each step.  High values make sequences strictly ordered runs.
    ring_affinity:
        Extra transition mass from cluster ``k`` to ``k+1 (mod K)``,
        creating a predictable drift between interests.
    preference_mix:
        Exponent mixing the user's long-term preference into each
        transition (0 = pure Markov, 1 = fully preference-weighted).
    seed:
        Generator seed; the whole log is deterministic given it.
    """

    num_users: int = 1000
    num_items: int = 500
    num_interests: int = 20
    interest_sparsity: float = 0.15
    popularity_exponent: float = 1.05
    mean_length: float = 9.0
    length_dispersion: float = 2.0
    min_length: int = 3
    interest_persistence: float = 0.75
    ring_affinity: float = 0.6
    preference_mix: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_users <= 0 or self.num_items <= 0:
            raise ValueError("num_users and num_items must be positive")
        if self.num_interests <= 1:
            raise ValueError("num_interests must be at least 2")
        if self.num_items < self.num_interests:
            raise ValueError("need at least one item per interest cluster")
        if not 0.0 <= self.interest_persistence < 1.0:
            raise ValueError("interest_persistence must be in [0, 1)")
        if self.mean_length <= self.min_length:
            raise ValueError("mean_length must exceed min_length")


@dataclass
class _World:
    """Sampled global state: cluster assignments and transition matrix."""

    item_cluster: np.ndarray
    cluster_items: list[np.ndarray]
    cluster_cumpop: list[np.ndarray]
    transition: np.ndarray
    user_preferences: np.ndarray = field(default=None)  # type: ignore[assignment]


def _build_world(config: SyntheticConfig, rng: np.random.Generator) -> _World:
    k = config.num_interests
    # Round-robin item assignment keeps clusters balanced.
    item_cluster = np.arange(config.num_items) % k
    cluster_items = [np.flatnonzero(item_cluster == c) for c in range(k)]
    cluster_cumpop = []
    for items in cluster_items:
        ranks = np.arange(1, len(items) + 1, dtype=np.float64)
        pop = ranks ** (-config.popularity_exponent)
        cluster_cumpop.append(np.cumsum(pop / pop.sum()))

    # Interest transition matrix: persistence + ring drift + uniform noise.
    transition = np.full((k, k), (1.0 - config.interest_persistence) * 0.2 / k)
    remaining = 1.0 - config.interest_persistence
    for c in range(k):
        transition[c, c] += config.interest_persistence
        transition[c, (c + 1) % k] += remaining * config.ring_affinity
    transition /= transition.sum(axis=1, keepdims=True)

    preferences = rng.dirichlet(
        np.full(k, config.interest_sparsity), size=config.num_users
    )
    return _World(item_cluster, cluster_items, cluster_cumpop, transition, preferences)


def _sample_lengths(config: SyntheticConfig, rng: np.random.Generator) -> np.ndarray:
    """Negative-binomial sequence lengths with the configured mean."""
    r = config.length_dispersion
    mean_extra = config.mean_length - config.min_length
    p = r / (r + mean_extra)
    extra = rng.negative_binomial(r, p, size=config.num_users)
    return (config.min_length + extra).astype(np.int64)


def _sample_items_for_clusters(
    clusters: np.ndarray, world: _World, rng: np.random.Generator
) -> np.ndarray:
    """Draw one item per user from that user's current cluster."""
    out = np.empty(len(clusters), dtype=np.int64)
    draws = rng.random(len(clusters))
    for c in np.unique(clusters):
        members = clusters == c
        positions = np.searchsorted(world.cluster_cumpop[c], draws[members])
        out[members] = world.cluster_items[c][positions]
    return out


def generate_log_with_attributes(
    config: SyntheticConfig,
) -> tuple[InteractionLog, np.ndarray]:
    """Generate a log plus the items' latent-cluster attributes.

    Returns ``(log, attributes)`` where ``attributes[raw_item_id]`` is
    the item's interest-cluster index — the categorical side information
    an S3-Rec-style model consumes.  The log itself is identical to
    :func:`generate_log` for the same config.
    """
    log = generate_log(config)
    attributes = np.arange(config.num_items) % config.num_interests
    return log, attributes.astype(np.int64)


def generate_log(config: SyntheticConfig) -> InteractionLog:
    """Generate a full interaction log from ``config``.

    Returns a raw (pre-5-core) :class:`InteractionLog`; run it through
    :func:`repro.data.preprocessing.five_core_filter` to match the
    paper's preprocessing.
    """
    rng = np.random.default_rng(config.seed)
    world = _build_world(config, rng)
    lengths = _sample_lengths(config, rng)
    max_length = int(lengths.max())

    # Per-user mixed transition kernel support: preference^mix.
    pref_weight = world.user_preferences**config.preference_mix
    pref_weight /= pref_weight.sum(axis=1, keepdims=True)

    # Initial interest ~ user preference.
    cum_pref = np.cumsum(world.user_preferences, axis=1)
    current = (cum_pref > rng.random((config.num_users, 1))).argmax(axis=1)

    users_out: list[np.ndarray] = []
    items_out: list[np.ndarray] = []
    steps_out: list[np.ndarray] = []
    all_users = np.arange(config.num_users)

    for t in range(max_length):
        active = lengths > t
        if not active.any():
            break
        active_users = all_users[active]
        items = _sample_items_for_clusters(current[active], world, rng)
        users_out.append(active_users)
        items_out.append(items)
        steps_out.append(np.full(len(active_users), t, dtype=np.int64))

        # Advance interests: Markov row blended with user preference.
        probs = world.transition[current[active]] * pref_weight[active]
        probs /= probs.sum(axis=1, keepdims=True)
        cum = np.cumsum(probs, axis=1)
        current[active] = (cum > rng.random((len(active_users), 1))).argmax(axis=1)

    user_ids = np.concatenate(users_out)
    item_ids = np.concatenate(items_out)
    steps = np.concatenate(steps_out)

    # Timestamps: per-user start offset plus per-step gaps; strictly
    # increasing within a user so chronological sorting is well-defined.
    start = rng.uniform(0.0, 1e6, size=config.num_users)
    gaps = rng.exponential(3600.0, size=len(user_ids)) + 1.0
    timestamps = start[user_ids] + steps * 86400.0 + gaps

    return InteractionLog(user_ids, item_ids, timestamps)
