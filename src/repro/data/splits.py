"""Alternative evaluation splits (extension).

The paper — like most sequential-recommendation work — uses per-user
leave-one-out splits (:func:`repro.data.preprocessing.leave_one_out_split`).
Leave-one-out leaks future *global* information into training (user A's
training items may postdate user B's test item), so production teams
often prefer a **global temporal split**: pick cutoff timestamps, train
on everything before, evaluate on what comes after.  This module
provides that protocol on raw :class:`InteractionLog` objects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.log import InteractionLog


@dataclass
class TemporalSplit:
    """A train/valid/test partition of one log by global time."""

    train: InteractionLog
    valid: InteractionLog
    test: InteractionLog
    valid_cutoff: float
    test_cutoff: float


def temporal_split(
    log: InteractionLog,
    valid_fraction: float = 0.1,
    test_fraction: float = 0.1,
) -> TemporalSplit:
    """Split a log at global time quantiles.

    The earliest ``1 - valid_fraction - test_fraction`` of interactions
    (by timestamp) become training data, the next ``valid_fraction``
    validation, the rest test.

    Raises on degenerate fractions or an empty log.
    """
    if len(log) == 0:
        raise ValueError("cannot split an empty log")
    if valid_fraction < 0 or test_fraction < 0:
        raise ValueError("fractions must be non-negative")
    if valid_fraction + test_fraction >= 1.0:
        raise ValueError("train fraction would be empty")

    train_quantile = 1.0 - valid_fraction - test_fraction
    valid_cutoff = float(np.quantile(log.timestamps, train_quantile))
    test_cutoff = float(np.quantile(log.timestamps, train_quantile + valid_fraction))

    train_mask = log.timestamps <= valid_cutoff
    valid_mask = (log.timestamps > valid_cutoff) & (log.timestamps <= test_cutoff)
    test_mask = log.timestamps > test_cutoff
    return TemporalSplit(
        train=log.select(train_mask),
        valid=log.select(valid_mask),
        test=log.select(test_mask),
        valid_cutoff=valid_cutoff,
        test_cutoff=test_cutoff,
    )


def next_item_events(
    history: InteractionLog, future: InteractionLog
) -> list[tuple[int, np.ndarray, int]]:
    """Pair each future interaction with the user's history before it.

    Returns ``(user, history_items, target_item)`` tuples — the
    temporal-split analogue of leave-one-out evaluation rows.  Users
    with no history are skipped (cold start is a separate problem).
    Only each user's *first* future interaction is used, so one user
    contributes one evaluation event (mirroring leave-one-out).
    """
    events: list[tuple[int, np.ndarray, int]] = []
    order = np.argsort(future.timestamps, kind="stable")
    seen_users: set[int] = set()
    for index in order:
        user = int(future.user_ids[index])
        if user in seen_users:
            continue
        seen_users.add(user)
        mask = history.user_ids == user
        if not mask.any():
            continue
        user_times = history.timestamps[mask]
        user_items = history.item_ids[mask]
        chronological = np.argsort(user_times, kind="stable")
        events.append(
            (user, user_items[chronological], int(future.item_ids[index]))
        )
    return events
