"""Deterministic replayed-traffic load testing for the serving stack.

Synthesize a trace with :func:`repro.data.synthetic.synthesize_trace`,
then replay it against a live server::

    from repro.data.synthetic import synthesize_trace
    from repro.loadtest import LoadTestConfig, run_loadtest

    trace = synthesize_trace(num_events=10_000, seed=0)
    result = run_loadtest(trace, "127.0.0.1", 8080, LoadTestConfig())
    assert result.ok, result.violations
    print(result.report()["latency"])

``python -m repro loadtest`` wraps this (self-hosting a server from a
checkpoint or targeting ``--url``); the serving-scale benchmark uses
it to gate multi-worker QPS/p99 — see ``docs/SCALING.md``.
"""

from repro.loadtest.harness import (
    METRICS_SCHEMA_KEYS,
    EventOutcome,
    LoadTestConfig,
    LoadTestResult,
    run_loadtest,
)

__all__ = [
    "EventOutcome",
    "LoadTestConfig",
    "LoadTestResult",
    "METRICS_SCHEMA_KEYS",
    "run_loadtest",
]
