"""Replay a synthesized traffic trace against the live HTTP server.

The harness is the measuring half of the scale-out stack
(``docs/SCALING.md``): it takes a deterministic
:class:`~repro.data.synthetic.TrafficTrace`, drives the real
:class:`~repro.serve.server.RecommendationServer` over persistent
HTTP/1.1 connections from N closed-loop client threads, and checks the
serving invariants that make a load number trustworthy:

* **completeness** — every event gets an HTTP response; transport
  errors and timeouts are violations, not noise;
* **refusal envelope** — non-200 responses must carry a structured
  refusal reason from :data:`repro.serve.resilience.REFUSAL_REASONS`
  (shed / queue full / deadline); anything else means the server broke
  on valid traffic;
* **monotone model version** — each client observes a non-decreasing
  ``model_version``, so hot reloads never serve stale weights after
  new ones were visible;
* **accounting** — the engine's ``requests`` counter moves by exactly
  the number of sequences in successful responses, and
  ``requests_degraded`` by exactly the degraded items clients saw —
  the metrics pipeline cannot silently drop or invent work;
* **schema** — ``/metrics`` keeps the documented serving schema.

Latency percentiles (p50/p90/p99) and sustained QPS come out in
:meth:`LoadTestResult.report`, which the serving-scale benchmark
writes into ``BENCH_serving_scale.json``.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from http.client import HTTPConnection

import numpy as np

from repro.serve.resilience import REASON_DEADLINE, REFUSAL_REASONS

__all__ = [
    "EventOutcome",
    "LoadTestConfig",
    "LoadTestResult",
    "run_loadtest",
]

#: ``/metrics`` keys the schema invariant requires (docs/SERVING.md).
METRICS_SCHEMA_KEYS = (
    "uptime_seconds", "counters", "gauges", "cache", "throughput", "latency",
)


@dataclass
class LoadTestConfig:
    """Client-side replay knobs (the traffic shape lives in the trace)."""

    #: Closed-loop client threads, each with its own persistent
    #: connection (and its own monotone-version check).
    threads: int = 4
    timeout_s: float = 30.0
    #: Replay only the first N trace events (``--quick`` runs).
    max_events: int | None = None
    #: Stamp a deadline budget onto every payload when set.
    deadline_ms: float | None = None
    #: Open-loop pacing: honour the trace's ``arrival_s`` stamps
    #: (divided by ``pace_speedup``) instead of going flat out.
    pace: bool = False
    pace_speedup: float = 1.0

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ValueError(f"threads must be positive, got {self.threads}")
        if self.pace_speedup <= 0:
            raise ValueError(
                f"pace_speedup must be positive, got {self.pace_speedup}"
            )


@dataclass
class EventOutcome:
    """What one replayed trace event observed."""

    index: int
    kind: str
    thread: int
    status: int
    latency_s: float
    sequences: int
    ok_items: int = 0
    degraded_items: int = 0
    error_reasons: list = field(default_factory=list)
    refusal_reason: str | None = None
    model_versions: list = field(default_factory=list)
    transport_error: str | None = None


class LoadTestResult:
    """Outcomes + metrics deltas + the invariant verdict."""

    def __init__(
        self,
        outcomes: list[EventOutcome],
        wall_s: float,
        metrics_before: dict,
        metrics_after: dict,
        trace_summary: dict | None = None,
    ) -> None:
        self.outcomes = outcomes
        self.wall_s = wall_s
        self.metrics_before = metrics_before
        self.metrics_after = metrics_after
        self.trace_summary = trace_summary or {}
        self.violations = self._check_invariants()

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return not self.violations

    def _latencies(self) -> np.ndarray:
        return np.asarray(
            [o.latency_s for o in self.outcomes if o.status == 200]
            or [0.0]
        )

    def percentiles(self) -> dict:
        latencies = self._latencies() * 1e3
        return {
            "p50_ms": float(np.percentile(latencies, 50)),
            "p90_ms": float(np.percentile(latencies, 90)),
            "p99_ms": float(np.percentile(latencies, 99)),
            "mean_ms": float(latencies.mean()),
            "max_ms": float(latencies.max()),
        }

    @property
    def sequences_completed(self) -> int:
        """Sequences inside 200 responses (errored items included —
        the engine scored or explicitly refused each one)."""
        return sum(o.sequences for o in self.outcomes if o.status == 200)

    @property
    def qps(self) -> float:
        """Sustained throughput: completed sequences per wall second."""
        return self.sequences_completed / self.wall_s if self.wall_s > 0 else 0.0

    def report(self) -> dict:
        """The JSON payload benchmarks persist."""
        statuses: dict[str, int] = {}
        refusals: dict[str, int] = {}
        item_errors: dict[str, int] = {}
        for outcome in self.outcomes:
            statuses[str(outcome.status)] = statuses.get(
                str(outcome.status), 0) + 1
            if outcome.refusal_reason:
                refusals[outcome.refusal_reason] = refusals.get(
                    outcome.refusal_reason, 0) + 1
            for reason in outcome.error_reasons:
                item_errors[reason] = item_errors.get(reason, 0) + 1
        return {
            "events": len(self.outcomes),
            "sequences_completed": self.sequences_completed,
            "degraded_items": sum(o.degraded_items for o in self.outcomes),
            "wall_s": self.wall_s,
            "qps": self.qps,
            "latency": self.percentiles(),
            "statuses": statuses,
            "refusals": refusals,
            "item_errors": item_errors,
            "trace": self.trace_summary,
            "violations": list(self.violations),
            "ok": self.ok,
        }

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def _counter_delta(self, name: str) -> int:
        after = self.metrics_after.get("counters", {}).get(name, 0)
        before = self.metrics_before.get("counters", {}).get(name, 0)
        return int(after) - int(before)

    def _check_invariants(self) -> list[str]:
        violations: list[str] = []

        dropped = [o.index for o in self.outcomes if o.transport_error]
        if dropped:
            sample = self.outcomes[
                [o.index for o in self.outcomes].index(dropped[0])
            ]
            violations.append(
                f"{len(dropped)} events got no HTTP response (first: event "
                f"{dropped[0]}: {sample.transport_error})"
            )

        bad_refusals = [
            (o.index, o.status, o.refusal_reason)
            for o in self.outcomes
            if not o.transport_error and o.status != 200
            and o.refusal_reason not in REFUSAL_REASONS
        ]
        if bad_refusals:
            violations.append(
                f"{len(bad_refusals)} non-200 responses outside the "
                f"shed/deadline envelope (first: {bad_refusals[0]})"
            )

        bad_items = [
            (o.index, reason)
            for o in self.outcomes
            for reason in o.error_reasons
            if reason != REASON_DEADLINE
        ]
        if bad_items:
            violations.append(
                f"{len(bad_items)} in-batch item errors other than "
                f"deadline_exceeded on valid traffic (first: {bad_items[0]})"
            )

        by_thread: dict[int, list[tuple[int, int]]] = {}
        for outcome in self.outcomes:
            for version in outcome.model_versions:
                by_thread.setdefault(outcome.thread, []).append(
                    (outcome.index, version)
                )
        for thread, seen in by_thread.items():
            seen.sort()  # outcomes are recorded per thread in replay order
            versions = [version for __, version in seen]
            if any(b < a for a, b in zip(versions, versions[1:])):
                violations.append(
                    f"client thread {thread} observed a model_version "
                    f"regression: {versions}"
                )

        expected = self.sequences_completed
        actual = self._counter_delta("requests")
        if actual != expected:
            violations.append(
                f"metrics accounting: engine 'requests' moved by {actual} "
                f"but clients completed {expected} sequences"
            )

        degraded_seen = sum(o.degraded_items for o in self.outcomes)
        degraded_counted = self._counter_delta("requests_degraded")
        if degraded_counted != degraded_seen:
            violations.append(
                f"degraded-tier accounting: 'requests_degraded' moved by "
                f"{degraded_counted} but clients saw {degraded_seen} "
                f"degraded items"
            )

        missing = [
            key for key in METRICS_SCHEMA_KEYS if key not in self.metrics_after
        ]
        if missing:
            violations.append(f"/metrics schema is missing keys {missing}")
        return violations


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
def _get_json(host: str, port: int, path: str, timeout_s: float) -> dict:
    conn = HTTPConnection(host, port, timeout=timeout_s)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()


def _payload_with_deadline(payload: dict, deadline_ms: float | None) -> dict:
    if deadline_ms is None or "deadline_ms" in payload:
        return payload
    stamped = dict(payload)
    stamped["deadline_ms"] = deadline_ms
    return stamped


def _observe(outcome: EventOutcome, body: dict, kind: str) -> None:
    """Fold one 200 response body into its outcome."""
    results = body["results"] if kind == "batch" else [body]
    for result in results:
        reason = result.get("reason")
        if reason is not None:
            outcome.error_reasons.append(reason)
        else:
            outcome.ok_items += 1
            outcome.degraded_items += bool(result.get("degraded"))
        if "model_version" in result:
            outcome.model_versions.append(int(result["model_version"]))


def _replay_thread(
    thread: int,
    host: str,
    port: int,
    config: LoadTestConfig,
    events_lock: threading.Lock,
    events_iter,
    outcomes: list[EventOutcome],
    outcomes_lock: threading.Lock,
    epoch: float,
) -> None:
    conn = HTTPConnection(host, port, timeout=config.timeout_s)
    headers = {"Content-Type": "application/json"}
    try:
        while True:
            with events_lock:
                event = next(events_iter, None)
            if event is None:
                return
            if config.pace:
                due = epoch + event["arrival_s"] / config.pace_speedup
                delay = due - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
            kind = event["kind"]
            payloads = [
                _payload_with_deadline(p, config.deadline_ms)
                for p in event["requests"]
            ]
            if kind == "batch":
                path, body = "/recommend/batch", {"requests": payloads}
            else:
                path, body = "/recommend", payloads[0]
            outcome = EventOutcome(
                index=event["index"], kind=kind, thread=thread,
                status=0, latency_s=0.0, sequences=len(payloads),
            )
            encoded = json.dumps(body).encode("utf-8")
            started = time.perf_counter()
            try:
                conn.request("POST", path, body=encoded, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                outcome.latency_s = time.perf_counter() - started
                outcome.status = response.status
                parsed = json.loads(raw.decode("utf-8"))
                if response.status == 200:
                    _observe(outcome, parsed, kind)
                else:
                    outcome.refusal_reason = parsed.get("reason")
            except Exception as error:  # noqa: BLE001 — recorded, judged later
                outcome.latency_s = time.perf_counter() - started
                outcome.transport_error = f"{type(error).__name__}: {error}"
                conn.close()
                conn = HTTPConnection(host, port, timeout=config.timeout_s)
            with outcomes_lock:
                outcomes.append(outcome)
    finally:
        conn.close()


def run_loadtest(
    trace,
    host: str,
    port: int,
    config: LoadTestConfig | None = None,
) -> LoadTestResult:
    """Replay ``trace`` against a live server and judge the invariants.

    ``trace`` is a :class:`~repro.data.synthetic.TrafficTrace` (or any
    iterable of its event dicts).  The server must already be
    listening on ``(host, port)``; use
    :func:`repro.serve.config.ServeConfig.build_engine` +
    :class:`~repro.serve.server.RecommendationServer` to self-host.
    """
    config = config or LoadTestConfig()
    metrics_before = _get_json(host, port, "/metrics", config.timeout_s)
    events_iter = iter(
        trace.events(config.max_events) if hasattr(trace, "events") else trace
    )
    events_lock = threading.Lock()
    outcomes: list[EventOutcome] = []
    outcomes_lock = threading.Lock()
    epoch = time.monotonic()
    threads = [
        threading.Thread(
            target=_replay_thread,
            args=(index, host, port, config, events_lock, events_iter,
                  outcomes, outcomes_lock, epoch),
            name=f"loadtest-client-{index}",
            daemon=True,
        )
        for index in range(config.threads)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - started
    metrics_after = _get_json(host, port, "/metrics", config.timeout_s)
    summary = (
        trace.summary(config.max_events) if hasattr(trace, "summary") else None
    )
    return LoadTestResult(
        outcomes, wall_s, metrics_before, metrics_after, summary
    )
