"""Representation-quality analysis tools.

Standard diagnostics from the contrastive-learning literature, used to
*explain* why CL4SRec's pre-training helps:

* :func:`alignment` / :func:`uniformity` — Wang & Isola (2020) metrics
  on the hypersphere: good contrastive representations place positive
  pairs close (low alignment loss) while spreading all representations
  out (low uniformity loss).
* :func:`embedding_statistics` — norms/anisotropy of the item table.
* :class:`ConvergenceTracker` — per-epoch validation curves, used to
  verify the paper's observation that pre-training warms up (speeds up)
  fine-tuning convergence.
* :mod:`repro.analysis.attention_probe` — attention-map extraction,
  recency profiles and attention entropy for interpreting what the
  encoder's user representation attends to.
"""

from repro.analysis.attention_probe import (
    attention_entropy,
    attention_maps,
    recency_profile,
)
from repro.analysis.representation import (
    ConvergenceTracker,
    alignment,
    embedding_statistics,
    representation_quality,
    uniformity,
)

__all__ = [
    "ConvergenceTracker",
    "alignment",
    "attention_entropy",
    "attention_maps",
    "embedding_statistics",
    "recency_profile",
    "representation_quality",
    "uniformity",
]
