"""Attention interpretability probes.

Extract post-softmax attention maps from a trained SASRec-family
encoder and summarize *where the user representation looks*: how much
weight the final (representation) position puts on each relative
offset into the past, and how concentrated that attention is.
"""

from __future__ import annotations

import numpy as np

from repro.data.loaders import pad_left
from repro.data.preprocessing import SequenceDataset
from repro.nn.tensor import no_grad


def attention_maps(encoder, item_ids: np.ndarray) -> list[np.ndarray]:
    """Per-layer attention probabilities for a batch of sequences.

    Re-runs the encoder's forward pass layer by layer with
    ``return_probs=True``; returns one ``(batch, heads, T, T)`` array
    per Transformer layer.  Dropout is bypassed (eval mode is forced).
    """
    item_ids = np.asarray(item_ids, dtype=np.int64)
    batch, length = item_ids.shape
    was_training = encoder.training
    encoder.eval()
    maps: list[np.ndarray] = []
    with no_grad():
        positions = np.broadcast_to(np.arange(length), (batch, length))
        hidden = encoder.item_embedding(item_ids) + encoder.position_embedding(
            positions
        )
        hidden = encoder.embedding_dropout(hidden)
        padding_mask = item_ids == 0
        for layer in encoder.transformer.layers:
            attended, probs = layer.attention(
                hidden,
                causal=encoder.causal,
                key_padding_mask=padding_mask,
                return_probs=True,
            )
            maps.append(probs)
            hidden = layer.norm1(hidden + layer.dropout1(attended))
            transformed = layer.feed_forward(hidden)
            hidden = layer.norm2(hidden + layer.dropout2(transformed))
    if was_training:
        encoder.train()
    return maps


def recency_profile(
    model,
    dataset: SequenceDataset,
    users: np.ndarray,
    max_length: int,
    layer: int = -1,
    max_offsets: int = 10,
) -> np.ndarray:
    """Mean attention from the representation position to the recent past.

    Returns an array ``profile[k]`` = average attention weight the last
    position places on the item ``k`` steps back (k=0 is the last item
    itself), averaged over heads and users, using real (non-padding)
    positions only.  A recency-biased encoder shows a decaying profile.
    """
    users = np.asarray(users)
    batch = np.zeros((len(users), max_length), dtype=np.int64)
    for row, user in enumerate(users):
        batch[row] = pad_left(dataset.full_sequence(int(user)), max_length)
    maps = attention_maps(model.encoder, batch)[layer]  # (B, h, T, T)
    last_row = maps[:, :, -1, :]  # attention from the final position
    profile = np.zeros(max_offsets)
    counts = np.zeros(max_offsets)
    for row in range(len(users)):
        real = batch[row] > 0
        for offset in range(max_offsets):
            position = max_length - 1 - offset
            if position < 0 or not real[position]:
                continue
            profile[offset] += last_row[row, :, position].mean()
            counts[offset] += 1
    valid = counts > 0
    profile[valid] /= counts[valid]
    return profile


def attention_entropy(maps: np.ndarray, padding_mask: np.ndarray) -> float:
    """Mean entropy (nats) of attention rows at real query positions.

    Low entropy = peaky attention (the model commits to few items);
    high entropy = diffuse attention.
    """
    maps = np.asarray(maps, dtype=np.float64)
    padding_mask = np.asarray(padding_mask, dtype=bool)
    batch, heads, length, __ = maps.shape
    entropies: list[float] = []
    safe = np.clip(maps, 1e-12, 1.0)
    row_entropy = -(safe * np.log(safe)).sum(axis=-1)  # (B, h, T)
    for row in range(batch):
        real = ~padding_mask[row]
        if real.any():
            entropies.append(float(row_entropy[row][:, real].mean()))
    if not entropies:
        raise ValueError("no real positions to measure")
    return float(np.mean(entropies))
