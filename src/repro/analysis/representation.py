"""Alignment / uniformity and embedding diagnostics."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.loaders import ContrastiveBatchLoader
from repro.data.preprocessing import SequenceDataset
from repro.nn.tensor import no_grad


def _normalize(x: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(x, axis=-1, keepdims=True)
    return x / np.maximum(norms, 1e-12)


def alignment(view_a: np.ndarray, view_b: np.ndarray, alpha: float = 2.0) -> float:
    """Wang & Isola alignment loss: E‖f(x) − f(x⁺)‖^α on the sphere.

    Lower is better — positive pairs should map close together.
    """
    a = _normalize(np.asarray(view_a, dtype=np.float64))
    b = _normalize(np.asarray(view_b, dtype=np.float64))
    return float((np.linalg.norm(a - b, axis=-1) ** alpha).mean())


def uniformity(representations: np.ndarray, t: float = 2.0) -> float:
    """Wang & Isola uniformity loss: log E exp(−t‖f(x) − f(y)‖²).

    Lower is better — representations should spread over the sphere.
    """
    z = _normalize(np.asarray(representations, dtype=np.float64))
    if len(z) < 2:
        raise ValueError("uniformity needs at least 2 representations")
    squared_distances = (
        np.sum(z**2, axis=1)[:, None]
        + np.sum(z**2, axis=1)[None, :]
        - 2.0 * z @ z.T
    )
    mask = ~np.eye(len(z), dtype=bool)
    return float(np.log(np.exp(-t * squared_distances[mask]).mean()))


def representation_quality(
    model,
    dataset: SequenceDataset,
    max_length: int,
    num_users: int = 256,
    seed: int = 0,
) -> dict[str, float]:
    """Alignment & uniformity of a model's user representations.

    Uses the model's own pair sampler (``model.pair_sampler``) to
    produce the positive views, mirroring the training distribution.
    """
    rng = np.random.default_rng(seed)
    loader = ContrastiveBatchLoader(
        dataset, model.pair_sampler, max_length, num_users, rng
    )
    batch = next(iter(loader.epoch()))
    with no_grad():
        rep_a = model.encoder.user_representation(batch.view_a).data
        rep_b = model.encoder.user_representation(batch.view_b).data
    return {
        "alignment": alignment(rep_a, rep_b),
        "uniformity": uniformity(np.concatenate([rep_a, rep_b], axis=0)),
    }


def embedding_statistics(table: np.ndarray) -> dict[str, float]:
    """Norm and anisotropy diagnostics for an embedding table.

    Anisotropy is the mean pairwise cosine similarity of a sample of
    rows — values near 1 indicate a collapsed (cone-shaped) space.
    """
    table = np.asarray(table, dtype=np.float64)
    if table.ndim != 2 or len(table) < 2:
        raise ValueError("expected a (rows, dim) table with >= 2 rows")
    norms = np.linalg.norm(table, axis=1)
    sample = table[: min(len(table), 512)]
    unit = _normalize(sample)
    cosine = unit @ unit.T
    mask = ~np.eye(len(unit), dtype=bool)
    return {
        "mean_norm": float(norms.mean()),
        "std_norm": float(norms.std()),
        "anisotropy": float(cosine[mask].mean()),
    }


@dataclass
class ConvergenceTracker:
    """Record validation curves to compare convergence speed.

    The paper observes that pre-training "can warm-up the following
    procedure" — a pre-trained model should hit any fixed performance
    bar in fewer fine-tuning epochs.
    """

    curves: dict[str, list[float]] = field(default_factory=dict)

    def record(self, label: str, score: float) -> None:
        self.curves.setdefault(label, []).append(float(score))

    def epochs_to_reach(self, label: str, bar: float) -> int | None:
        """First (1-based) epoch at which ``label`` reached ``bar``."""
        for epoch, score in enumerate(self.curves.get(label, []), start=1):
            if score >= bar:
                return epoch
        return None

    def faster(self, candidate: str, baseline: str, bar: float) -> bool:
        """Did ``candidate`` reach ``bar`` in fewer epochs than ``baseline``?"""
        a = self.epochs_to_reach(candidate, bar)
        b = self.epochs_to_reach(baseline, bar)
        if a is None:
            return False
        if b is None:
            return True
        return a < b
