"""Item-to-item correlation from co-occurrence statistics.

The informative augmentations in :mod:`repro.augment.extended`
(substitute / insert, the direction CL4SRec's future-work section
spawned — CoSeRec, Liu et al. 2021) need a notion of "similar item".
This module computes it from the training sequences alone: items that
co-occur within a sliding window are correlated, scored by a
normalized pointwise co-occurrence weight.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import sparse


class ItemCorrelation:
    """Top-k most-correlated items per item, from co-occurrence counts.

    Parameters
    ----------
    num_items:
        Vocabulary size (item ids ``1..num_items``).
    window:
        Co-occurrence window: items at distance ≤ ``window`` inside a
        sequence count as co-occurring.
    top_k:
        How many neighbours to keep per item.
    """

    def __init__(self, num_items: int, window: int = 3, top_k: int = 10) -> None:
        if num_items < 1:
            raise ValueError("num_items must be positive")
        if window < 1:
            raise ValueError("window must be at least 1")
        if top_k < 1:
            raise ValueError("top_k must be at least 1")
        self.num_items = num_items
        self.window = window
        self.top_k = top_k
        self._neighbours: np.ndarray | None = None
        self._weights: np.ndarray | None = None

    def fit(self, sequences: Sequence[np.ndarray]) -> "ItemCorrelation":
        """Count windowed co-occurrences and keep the top-k per item."""
        rows: list[int] = []
        cols: list[int] = []
        for sequence in sequences:
            sequence = np.asarray(sequence)
            n = len(sequence)
            for offset in range(1, min(self.window, n - 1) + 1 if n > 1 else 0):
                left = sequence[:-offset]
                right = sequence[offset:]
                rows.extend(left.tolist())
                cols.extend(right.tolist())
        size = self.num_items + 1  # id 0 = padding, never correlated
        if rows:
            data = np.ones(len(rows) * 2, dtype=np.float64)
            matrix = sparse.coo_matrix(
                (data, (rows + cols, cols + rows)), shape=(size, size)
            ).tocsr()
        else:
            matrix = sparse.csr_matrix((size, size))
        matrix.setdiag(0.0)

        # Normalize: c(i,j) / sqrt(c(i)·c(j)) — a cosine-style weight
        # that stops blockbuster items from dominating every list.
        totals = np.asarray(matrix.sum(axis=1)).ravel()
        scale = 1.0 / np.sqrt(np.maximum(totals, 1.0))

        neighbours = np.zeros((size, self.top_k), dtype=np.int64)
        weights = np.zeros((size, self.top_k), dtype=np.float64)
        for item in range(1, size):
            start, stop = matrix.indptr[item], matrix.indptr[item + 1]
            if start == stop:
                continue
            candidates = matrix.indices[start:stop]
            counts = matrix.data[start:stop]
            # setdiag leaves explicit zero entries behind — drop them
            # (and any other zero-count candidate, incl. padding id 0).
            positive = (counts > 0) & (candidates != item) & (candidates != 0)
            if not positive.any():
                continue
            candidates = candidates[positive]
            counts = counts[positive]
            scores = counts * scale[item] * scale[candidates]
            order = np.argsort(scores)[::-1][: self.top_k]
            neighbours[item, : len(order)] = candidates[order]
            weights[item, : len(order)] = scores[order]
        self._neighbours = neighbours
        self._weights = weights
        return self

    def most_similar(self, item: int) -> tuple[np.ndarray, np.ndarray]:
        """Neighbour ids and weights for ``item`` (zeros = no neighbour)."""
        if self._neighbours is None:
            raise RuntimeError("ItemCorrelation.fit must be called first")
        if not 1 <= item <= self.num_items:
            raise IndexError(f"item id {item} outside 1..{self.num_items}")
        return self._neighbours[item], self._weights[item]

    def sample_similar(self, item: int, rng: np.random.Generator) -> int:
        """Sample one correlated item (weight-proportional); falls back
        to the item itself when it has no neighbours."""
        neighbours, weights = self.most_similar(item)
        valid = (neighbours > 0) & (weights > 0)
        if not valid.any():
            return int(item)
        probs = weights[valid] / weights[valid].sum()
        return int(rng.choice(neighbours[valid], p=probs))
