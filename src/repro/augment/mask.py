"""Item mask augmentation (paper §3.3.2, Eq. 5)."""

from __future__ import annotations

import numpy as np

from repro.augment.base import Augmentation


class Mask(Augmentation):
    """Replace a random proportion ``gamma`` of items with ``[mask]``.

    Paper Eq. (5): ``L_m = floor(gamma * n)`` positions are chosen
    uniformly without replacement and overwritten with ``mask_token``.
    The sequence length is preserved.  High ``gamma`` is a strong
    augmentation.

    Scalar contract: ``op(sequence, rng) -> view`` on one 1-D array,
    same length out as in.  The matrix counterpart
    :class:`~repro.augment.batched.BatchMask` masks every row of a
    left-padded ``(B, T)`` batch in one shot and never touches
    padding.

    Edge cases: an empty sequence returns an empty copy; ``n == 1``
    is masked only when ``gamma == 1`` (``floor`` rounds the count to
    zero below that).

    Parameters
    ----------
    gamma:
        Mask proportion in ``[0, 1]``.
    mask_token:
        Item id of the special ``[mask]`` item — conventionally
        ``dataset.mask_token`` (``num_items + 1``).
    """

    def __init__(self, gamma: float, mask_token: int) -> None:
        if not 0.0 <= gamma <= 1.0:
            raise ValueError(f"gamma must be in [0, 1], got {gamma}")
        if mask_token <= 0:
            raise ValueError(f"mask_token must be a positive id, got {mask_token}")
        self.gamma = gamma
        self.mask_token = mask_token

    def __call__(self, sequence: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        sequence = self._validate(sequence)
        n = len(sequence)
        out = sequence.copy()
        if n == 0:
            return out
        num_masked = int(np.floor(self.gamma * n))
        if num_masked == 0:
            return out
        positions = rng.choice(n, size=num_masked, replace=False)
        out[positions] = self.mask_token
        return out

    def __repr__(self) -> str:
        return f"Mask(gamma={self.gamma}, mask_token={self.mask_token})"
