"""Item crop augmentation (paper §3.3.1, Eq. 4)."""

from __future__ import annotations

import numpy as np

from repro.augment.base import Augmentation


class Crop(Augmentation):
    """Keep a random contiguous sub-sequence of proportion ``eta``.

    For a sequence of length ``n`` the crop length is
    ``L_c = floor(eta * n)`` (at least 1), starting at a uniformly
    random position.  Small ``eta`` is a *strong* augmentation (little
    of the original view survives).
    """

    def __init__(self, eta: float) -> None:
        if not 0.0 < eta <= 1.0:
            raise ValueError(f"eta must be in (0, 1], got {eta}")
        self.eta = eta

    def __call__(self, sequence: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        sequence = self._validate(sequence)
        n = len(sequence)
        if n == 0:
            return sequence.copy()
        crop_length = max(1, int(np.floor(self.eta * n)))
        start = int(rng.integers(0, n - crop_length + 1))
        return sequence[start : start + crop_length].copy()

    def __repr__(self) -> str:
        return f"Crop(eta={self.eta})"
