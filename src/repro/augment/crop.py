"""Item crop augmentation (paper §3.3.1, Eq. 4)."""

from __future__ import annotations

import numpy as np

from repro.augment.base import Augmentation


class Crop(Augmentation):
    """Keep a random contiguous sub-sequence of proportion ``eta``.

    Paper Eq. (4): for a sequence of length ``n`` the crop length is
    ``L_c = floor(eta * n)`` (at least 1), starting at a uniformly
    random position.  Small ``eta`` is a *strong* augmentation (little
    of the original view survives).

    Scalar contract: ``op(sequence, rng) -> view`` on one 1-D array —
    the output is *shorter* than the input (length ``L_c``).  The
    matrix counterpart :class:`~repro.augment.batched.BatchCrop`
    applies the same law to every row of a left-padded ``(B, T)``
    batch at once and re-pads the shortened views.

    Edge cases: an empty sequence returns an empty copy; ``n == 1`` is
    a fixed point (the single item always survives via the ``max(1,
    ...)`` floor).
    """

    def __init__(self, eta: float) -> None:
        if not 0.0 < eta <= 1.0:
            raise ValueError(f"eta must be in (0, 1], got {eta}")
        self.eta = eta

    def __call__(self, sequence: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        sequence = self._validate(sequence)
        n = len(sequence)
        if n == 0:
            return sequence.copy()
        crop_length = max(1, int(np.floor(self.eta * n)))
        start = int(rng.integers(0, n - crop_length + 1))
        return sequence[start : start + crop_length].copy()

    def __repr__(self) -> str:
        return f"Crop(eta={self.eta})"
