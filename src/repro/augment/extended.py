"""Informative augmentations beyond the paper's three operators.

CL4SRec's random crop/mask/reorder spawned follow-up work on
*informative* augmentations that respect item semantics — CoSeRec
(Liu et al., 2021) adds **substitute** (swap items for correlated ones)
and **insert** (inject correlated items).  They are implemented here as
the repository's future-work extension, driven by the co-occurrence
statistics in :class:`repro.augment.correlation.ItemCorrelation`.

These operators have no hand-written matrix form; under
``pipeline="vectorized"`` they run through
:class:`repro.augment.batched.BatchScalarFallback`, which loops rows
but still benefits from precomputed padding and prefetching.
"""

from __future__ import annotations

import numpy as np

from repro.augment.base import Augmentation
from repro.augment.correlation import ItemCorrelation


class Substitute(Augmentation):
    """Replace a proportion ``rho`` of items with correlated items.

    Unlike :class:`repro.augment.mask.Mask`, the replacement carries
    information: each substituted position receives an item that
    co-occurs with the original, preserving the semantics of the view.
    """

    def __init__(self, rho: float, correlation: ItemCorrelation) -> None:
        if not 0.0 <= rho <= 1.0:
            raise ValueError(f"rho must be in [0, 1], got {rho}")
        self.rho = rho
        self.correlation = correlation

    def __call__(self, sequence: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        sequence = self._validate(sequence)
        n = len(sequence)
        out = sequence.copy()
        if n == 0:
            return out
        count = int(np.floor(self.rho * n))
        if count == 0:
            return out
        positions = rng.choice(n, size=count, replace=False)
        for position in positions:
            out[position] = self.correlation.sample_similar(
                int(out[position]), rng
            )
        return out

    def __repr__(self) -> str:
        return f"Substitute(rho={self.rho})"


class Insert(Augmentation):
    """Insert correlated items after a proportion ``mu`` of positions.

    Lengthens the sequence; callers relying on fixed lengths should
    re-truncate (the batch loaders do, via left-padding).
    """

    def __init__(self, mu: float, correlation: ItemCorrelation) -> None:
        if not 0.0 <= mu <= 1.0:
            raise ValueError(f"mu must be in [0, 1], got {mu}")
        self.mu = mu
        self.correlation = correlation

    def __call__(self, sequence: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        sequence = self._validate(sequence)
        n = len(sequence)
        if n == 0:
            return sequence.copy()
        count = int(np.floor(self.mu * n))
        if count == 0:
            return sequence.copy()
        positions = set(
            int(p) for p in rng.choice(n, size=count, replace=False)
        )
        pieces: list[int] = []
        for index, item in enumerate(sequence):
            pieces.append(int(item))
            if index in positions:
                pieces.append(
                    self.correlation.sample_similar(int(item), rng)
                )
        return np.asarray(pieces, dtype=np.int64)

    def __repr__(self) -> str:
        return f"Insert(mu={self.mu})"
