"""Matrix-form augmentations over left-padded batches (the fast path).

The scalar operators in :mod:`repro.augment` transform one sequence at
a time — clear as a reference implementation of the paper's Eq. 4–6,
but a per-row Python loop dominates contrastive-epoch wall time once
batches reach production size.  This module provides the vectorized
counterparts: each ``Batch*`` operator transforms a whole ``(B, T)``
left-padded item matrix (pad id 0 on the left, per-row true lengths
given separately) with a handful of numpy calls.

Contract shared by every batched operator::

    out, out_lengths = op(padded, lengths, rng)

* ``padded`` — ``(B, T)`` int64, row ``b``'s real items occupying the
  last ``lengths[b]`` columns (exactly what
  :func:`repro.data.loaders.pad_left` produces).  Never mutated.
* ``lengths`` — ``(B,)`` true sequence lengths, ``0 <= lengths <= T``.
* ``rng`` — a :class:`numpy.random.Generator`; same state ⇒ same
  output (bit-deterministic under a fixed seed).
* ``out`` — a new ``(B, T)`` left-padded matrix; ``out_lengths`` the
  per-row lengths of the transformed views.

Randomness model: callers that need consumption isolation (the
prefetching loaders) derive a dedicated child stream with
:func:`spawn_stream` — ``rng.spawn()`` under the hood — so the number
of values an operator consumes never perturbs any other stream.
Within one operator call, per-row randomness is the rows of a single
``(B,)`` / ``(B, T)`` matrix draw: row ``b`` sees its own independent
stream slice, which is what makes each batched operator
*distributionally equivalent* to applying its scalar counterpart
independently per row (property-tested in
``tests/augment/test_batched.py``).

Edge cases (mirroring the scalar operators): all-padding rows
(``lengths[b] == 0``) pass through unchanged; ``n == 1`` rows are a
fixed point of crop (the single item survives) and reorder (no window
of size ≥ 2 exists) but can still be masked.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.augment.base import Augmentation, Identity
from repro.augment.compose import Compose, PairSampler
from repro.augment.crop import Crop
from repro.augment.mask import Mask
from repro.augment.reorder import Reorder


def spawn_stream(rng: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Uses :meth:`numpy.random.Generator.spawn`, so the child's draws
    never consume from (or race with) the parent's main stream — the
    parent only advances its spawn counter, deterministically.  Falls
    back to seeding a fresh generator from one parent draw when the
    parent was built without a seed sequence.
    """
    try:
        return rng.spawn(1)[0]
    except (AttributeError, TypeError):  # generator without a SeedSequence
        return np.random.default_rng(int(rng.integers(0, 2**63)))


def _validate_batch(
    padded: np.ndarray, lengths: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    padded = np.asarray(padded, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if padded.ndim != 2:
        raise ValueError(f"padded batch must be 2-D, got shape {padded.shape}")
    if lengths.shape != (padded.shape[0],):
        raise ValueError(
            f"lengths must be ({padded.shape[0]},), got {lengths.shape}"
        )
    if lengths.size and (lengths.min() < 0 or lengths.max() > padded.shape[1]):
        raise ValueError("lengths must lie in [0, T]")
    return padded, lengths


class BatchedAugmentation(abc.ABC):
    """A vectorized augmentation over a left-padded ``(B, T)`` batch."""

    @abc.abstractmethod
    def __call__(
        self,
        padded: np.ndarray,
        lengths: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(out, out_lengths)`` — a transformed copy."""


class BatchCrop(BatchedAugmentation):
    """Vectorized :class:`~repro.augment.crop.Crop` (paper Eq. 4).

    Row ``b`` keeps a contiguous window of ``max(1, floor(eta * n_b))``
    items starting at a uniformly random offset — the same law as the
    scalar operator, drawn for all rows at once.  All-padding rows
    (``n_b == 0``) are returned unchanged.
    """

    def __init__(self, eta: float) -> None:
        if not 0.0 < eta <= 1.0:
            raise ValueError(f"eta must be in (0, 1], got {eta}")
        self.eta = eta

    def __call__(self, padded, lengths, rng):
        padded, n = _validate_batch(padded, lengths)
        B, T = padded.shape
        crop = np.maximum(1, np.floor(self.eta * n).astype(np.int64))
        crop = np.where(n > 0, np.minimum(crop, n), 0)
        start = rng.integers(0, n - crop + 1)  # (B,) uniform per row
        offsets = np.arange(T)[None, :] - (T - crop)[:, None]
        valid = offsets >= 0
        source = (T - n + start)[:, None] + np.where(valid, offsets, 0)
        gathered = np.take_along_axis(padded, np.clip(source, 0, T - 1), axis=1)
        return np.where(valid, gathered, 0), crop

    def __repr__(self) -> str:
        return f"BatchCrop(eta={self.eta})"


class BatchMask(BatchedAugmentation):
    """Vectorized :class:`~repro.augment.mask.Mask` (paper Eq. 5).

    Row ``b`` overwrites ``floor(gamma * n_b)`` real positions —
    chosen uniformly without replacement via random-key ranking — with
    ``mask_token``.  Lengths are preserved; padding is never masked.
    """

    def __init__(self, gamma: float, mask_token: int) -> None:
        if not 0.0 <= gamma <= 1.0:
            raise ValueError(f"gamma must be in [0, 1], got {gamma}")
        if mask_token <= 0:
            raise ValueError(f"mask_token must be a positive id, got {mask_token}")
        self.gamma = gamma
        self.mask_token = mask_token

    def __call__(self, padded, lengths, rng):
        padded, n = _validate_batch(padded, lengths)
        B, T = padded.shape
        num_masked = np.floor(self.gamma * n).astype(np.int64)
        keys = rng.random((B, T))
        columns = np.arange(T)[None, :]
        real = columns >= (T - n)[:, None]
        # Rank the real positions of each row by an i.i.d. uniform key:
        # the m lowest-ranked form a uniform m-subset without
        # replacement, exactly the scalar rng.choice(..., replace=False).
        order = np.argsort(np.where(real, keys, np.inf), axis=1)
        ranks = np.empty_like(order)
        np.put_along_axis(ranks, order, np.broadcast_to(columns, (B, T)), axis=1)
        chosen = real & (ranks < num_masked[:, None])
        return np.where(chosen, self.mask_token, padded), n.copy()

    def __repr__(self) -> str:
        return f"BatchMask(gamma={self.gamma}, mask_token={self.mask_token})"


class BatchReorder(BatchedAugmentation):
    """Vectorized :class:`~repro.augment.reorder.Reorder` (paper Eq. 6).

    Row ``b`` permutes a contiguous window of ``floor(beta * n_b)``
    items at a uniformly random offset; rows whose window would be
    shorter than 2 (including ``n_b <= 1``) pass through unchanged.
    The permutation is uniform: window items are re-sorted by i.i.d.
    uniform keys while every other position keeps its integer column
    as its key, so only the window moves.
    """

    def __init__(self, beta: float) -> None:
        if not 0.0 <= beta <= 1.0:
            raise ValueError(f"beta must be in [0, 1], got {beta}")
        self.beta = beta

    def __call__(self, padded, lengths, rng):
        padded, n = _validate_batch(padded, lengths)
        B, T = padded.shape
        window = np.floor(self.beta * n).astype(np.int64)
        active = window >= 2
        start = rng.integers(0, np.maximum(n - window, 0) + 1)
        window_start = T - n + start  # column of the window's first item
        keys = rng.random((B, T))
        columns = np.arange(T)[None, :]
        in_window = (
            active[:, None]
            & (columns >= window_start[:, None])
            & (columns < (window_start + window)[:, None])
        )
        # Window keys are floats inside [start, start + window); all
        # other columns keep their integer index, so argsort permutes
        # the window uniformly and leaves everything else in place.
        sort_key = np.where(
            in_window, window_start[:, None] + window[:, None] * keys, columns
        )
        perm = np.argsort(sort_key, axis=1, kind="stable")
        return np.take_along_axis(padded, perm, axis=1), n.copy()

    def __repr__(self) -> str:
        return f"BatchReorder(beta={self.beta})"


class BatchIdentity(BatchedAugmentation):
    """Vectorized no-op (ablation control): returns copies unchanged."""

    def __call__(self, padded, lengths, rng):
        padded, n = _validate_batch(padded, lengths)
        return padded.copy(), n.copy()

    def __repr__(self) -> str:
        return "BatchIdentity()"


class BatchCompose(BatchedAugmentation):
    """Apply batched operators left-to-right (vectorized ``Compose``)."""

    def __init__(self, operators: Sequence[BatchedAugmentation]) -> None:
        if not operators:
            raise ValueError("BatchCompose requires at least one operator")
        self.operators = list(operators)

    def __call__(self, padded, lengths, rng):
        out, n = _validate_batch(padded, lengths)
        for operator in self.operators:
            out, n = operator(out, n, rng)
        return out, n

    def __repr__(self) -> str:
        inner = ", ".join(repr(op) for op in self.operators)
        return f"BatchCompose([{inner}])"


class BatchScalarFallback(BatchedAugmentation):
    """Adapter running a scalar operator row by row.

    Lets any custom :class:`~repro.augment.base.Augmentation` (e.g.
    the correlation-fitted ``Insert``/``Substitute``) participate in
    the vectorized pipeline: batching, padding reuse and prefetching
    still apply even though the transform itself loops.  Views longer
    than ``T`` are left-truncated, matching ``pad_left``.
    """

    def __init__(self, operator: Augmentation) -> None:
        self.operator = operator

    def __call__(self, padded, lengths, rng):
        padded, n = _validate_batch(padded, lengths)
        B, T = padded.shape
        out = np.zeros_like(padded)
        out_lengths = np.zeros_like(n)
        for row in range(B):
            view = self.operator(padded[row, T - n[row] :], rng)
            kept = min(len(view), T)
            out_lengths[row] = kept
            if kept:
                out[row, T - kept :] = view[-kept:]
        return out, out_lengths

    def __repr__(self) -> str:
        return f"BatchScalarFallback({self.operator!r})"


def batched_operator(operator: Augmentation) -> BatchedAugmentation:
    """The vectorized counterpart of a scalar operator.

    ``Crop`` / ``Mask`` / ``Reorder`` / ``Identity`` / ``Compose`` map
    to their matrix forms; anything else is wrapped in
    :class:`BatchScalarFallback` so custom operators keep working.
    """
    if isinstance(operator, BatchedAugmentation):
        return operator
    if isinstance(operator, Crop):
        return BatchCrop(operator.eta)
    if isinstance(operator, Mask):
        return BatchMask(operator.gamma, operator.mask_token)
    if isinstance(operator, Reorder):
        return BatchReorder(operator.beta)
    if isinstance(operator, Identity):
        return BatchIdentity()
    if isinstance(operator, Compose):
        return BatchCompose([batched_operator(op) for op in operator.operators])
    return BatchScalarFallback(operator)


class BatchPairSampler:
    """Vectorized :class:`~repro.augment.compose.PairSampler` (§3.2.1).

    For every row two operators are sampled from the augmentation set
    (independently, or forced-distinct for the composition study) and
    applied to that row, producing the two correlated views of a
    positive pair — all rows at once.  Rows assigned the same operator
    are transformed together in one matrix call.

    Each invocation derives a private child stream via
    :func:`spawn_stream`, so how much randomness one batch consumes
    never shifts the caller's stream — a prerequisite for overlapping
    batch construction with training (see ``docs/PERFORMANCE.md``).
    """

    def __init__(
        self,
        operators: Sequence[BatchedAugmentation],
        distinct: bool = False,
    ) -> None:
        if not operators:
            raise ValueError("BatchPairSampler requires at least one operator")
        self.operators = list(operators)
        self.distinct = distinct and len(self.operators) >= 2

    @classmethod
    def from_scalar(cls, sampler: PairSampler) -> "BatchPairSampler":
        """Lift a scalar pair sampler into its batched equivalent."""
        return cls(
            [batched_operator(op) for op in sampler.operators],
            distinct=sampler.distinct,
        )

    def __call__(
        self,
        padded: np.ndarray,
        lengths: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[tuple[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
        """Return ``((view_a, len_a), (view_b, len_b))`` for the batch."""
        padded, lengths = _validate_batch(padded, lengths)
        stream = spawn_stream(rng)
        count = len(self.operators)
        first = stream.integers(0, count, size=len(padded))
        if self.distinct:
            offset = stream.integers(1, count, size=len(padded))
            second = (first + offset) % count
        else:
            second = stream.integers(0, count, size=len(padded))
        return (
            self._apply(padded, lengths, first, stream),
            self._apply(padded, lengths, second, stream),
        )

    def _apply(self, padded, lengths, choices, stream):
        out = np.zeros_like(padded)
        out_lengths = np.zeros_like(lengths)
        for index, operator in enumerate(self.operators):
            rows = np.flatnonzero(choices == index)
            if not len(rows):
                continue
            view, view_lengths = operator(padded[rows], lengths[rows], stream)
            out[rows] = view
            out_lengths[rows] = view_lengths
        return out, out_lengths

    def __repr__(self) -> str:
        inner = ", ".join(repr(op) for op in self.operators)
        return f"BatchPairSampler([{inner}], distinct={self.distinct})"
