"""Item reorder augmentation (paper §3.3.3, Eq. 6)."""

from __future__ import annotations

import numpy as np

from repro.augment.base import Augmentation


class Reorder(Augmentation):
    """Shuffle a random contiguous sub-sequence of proportion ``beta``.

    Paper Eq. (6): a window of length ``L_r = floor(beta * n)``
    starting at a random position is permuted uniformly; everything
    outside the window keeps its order.  High ``beta`` is a strong
    augmentation and encodes the paper's *flexible order* assumption.

    Scalar contract: ``op(sequence, rng) -> view`` on one 1-D array,
    same multiset of items out as in.  The matrix counterpart
    :class:`~repro.augment.batched.BatchReorder` permutes every row's
    window of a left-padded ``(B, T)`` batch in one shot.

    Edge cases: an empty sequence returns an empty copy; any window
    shorter than 2 — which includes every ``n <= 1`` sequence — makes
    the operator a no-op.
    """

    def __init__(self, beta: float) -> None:
        if not 0.0 <= beta <= 1.0:
            raise ValueError(f"beta must be in [0, 1], got {beta}")
        self.beta = beta

    def __call__(self, sequence: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        sequence = self._validate(sequence)
        n = len(sequence)
        out = sequence.copy()
        if n == 0:
            return out
        window = int(np.floor(self.beta * n))
        if window < 2:
            return out
        start = int(rng.integers(0, n - window + 1))
        segment = out[start : start + window]
        out[start : start + window] = rng.permutation(segment)
        return out

    def __repr__(self) -> str:
        return f"Reorder(beta={self.beta})"
