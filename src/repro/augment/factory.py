"""Build augmentation operators from names + proportion rates.

Used by configs and the experiment harness, which refer to operators by
the paper's names: ``"crop"`` (rate η), ``"mask"`` (rate γ),
``"reorder"`` (rate β).
"""

from __future__ import annotations

from typing import Sequence

from repro.augment.base import Augmentation, Identity
from repro.augment.crop import Crop
from repro.augment.mask import Mask
from repro.augment.reorder import Reorder

OPERATOR_NAMES = ("crop", "mask", "reorder")


def make_operator(name: str, rate: float, mask_token: int = 1) -> Augmentation:
    """Instantiate a single operator by paper name.

    ``mask_token`` is only used by ``"mask"`` — pass
    ``dataset.mask_token``.
    """
    name = name.lower()
    if name == "crop":
        return Crop(eta=rate)
    if name == "mask":
        return Mask(gamma=rate, mask_token=mask_token)
    if name == "reorder":
        return Reorder(beta=rate)
    if name == "identity":
        return Identity()
    raise ValueError(f"unknown augmentation '{name}'; expected one of {OPERATOR_NAMES}")


def make_operator_set(
    names: Sequence[str],
    rates: Sequence[float] | float,
    mask_token: int = 1,
) -> list[Augmentation]:
    """Instantiate several operators; ``rates`` may be shared or per-name."""
    if isinstance(rates, (int, float)):
        rates = [float(rates)] * len(names)
    if len(rates) != len(names):
        raise ValueError(
            f"got {len(names)} operator names but {len(rates)} rates"
        )
    return [
        make_operator(name, rate, mask_token=mask_token)
        for name, rate in zip(names, rates)
    ]
