"""Pairing and composition of augmentation operators.

:class:`PairSampler` implements the paper's §3.2.1 module: for each
user sequence, two operators ``a_i, a_j`` are sampled from the
augmentation set (independently, with replacement) and applied to the
same sequence, producing the two correlated views of a positive pair.

:class:`Compose` chains operators sequentially — used by the RQ3
composition study (Figure 5), where each *view* is produced by a
composite of two basic operators.

Both classes operate on one scalar sequence per call; their matrix
counterparts (:class:`~repro.augment.batched.BatchCompose`,
:class:`~repro.augment.batched.BatchPairSampler`) carry the same
semantics across a whole left-padded batch for the vectorized data
pipeline.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.augment.base import Augmentation


class Compose(Augmentation):
    """Apply operators left-to-right to form a composite augmentation."""

    def __init__(self, operators: Sequence[Augmentation]) -> None:
        if not operators:
            raise ValueError("Compose requires at least one operator")
        self.operators = list(operators)

    def __call__(self, sequence: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = self._validate(sequence)
        for operator in self.operators:
            out = operator(out, rng)
        return out

    def __repr__(self) -> str:
        inner = ", ".join(repr(op) for op in self.operators)
        return f"Compose([{inner}])"


class PairSampler:
    """Sample two augmentations from a set and produce a positive pair.

    Parameters
    ----------
    operators:
        The augmentation set :math:`\\mathcal{A}`.  With a single
        operator both views use it (with independent randomness), which
        is how the paper's per-operator study (Figure 4) is run.
    distinct:
        When true and at least two operators are available, the two
        sampled operators are forced to differ — the setting of the
        composition study (Figure 5), which applies two *different*
        methods to the same sequence.
    """

    def __init__(self, operators: Sequence[Augmentation], distinct: bool = False) -> None:
        if not operators:
            raise ValueError("PairSampler requires at least one operator")
        self.operators = list(operators)
        self.distinct = distinct and len(self.operators) >= 2

    def __call__(
        self, sequence: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return two augmented views of ``sequence``."""
        first = int(rng.integers(0, len(self.operators)))
        if self.distinct:
            offset = int(rng.integers(1, len(self.operators)))
            second = (first + offset) % len(self.operators)
        else:
            second = int(rng.integers(0, len(self.operators)))
        view_a = self.operators[first](sequence, rng)
        view_b = self.operators[second](sequence, rng)
        return view_a, view_b

    def __repr__(self) -> str:
        inner = ", ".join(repr(op) for op in self.operators)
        return f"PairSampler([{inner}], distinct={self.distinct})"
