"""Augmentation protocol shared by all operators."""

from __future__ import annotations

import abc

import numpy as np


class Augmentation(abc.ABC):
    """A stochastic transformation of an item sequence.

    Implementations must be pure given the generator: the input array
    is never modified in place, and the same generator state produces
    the same view.  This scalar protocol — one unpadded 1-D sequence
    per call — is the *reference* semantics; the matrix-form operators
    in :mod:`repro.augment.batched` transform whole left-padded
    ``(B, T)`` batches under the same per-row laws and are
    property-tested against these implementations.
    """

    @abc.abstractmethod
    def __call__(self, sequence: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return a transformed copy of ``sequence``."""

    @staticmethod
    def _validate(sequence: np.ndarray) -> np.ndarray:
        sequence = np.asarray(sequence, dtype=np.int64)
        if sequence.ndim != 1:
            raise ValueError(f"sequences must be 1-D, got shape {sequence.shape}")
        return sequence


class Identity(Augmentation):
    """No-op augmentation (useful as an ablation control)."""

    def __call__(self, sequence: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return self._validate(sequence).copy()

    def __repr__(self) -> str:
        return "Identity()"
