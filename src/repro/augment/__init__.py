"""The paper's three stochastic sequence augmentations (§3.3).

* :class:`~repro.augment.crop.Crop` — keep a random contiguous
  sub-sequence of proportion ``eta`` (Eq. 4).
* :class:`~repro.augment.mask.Mask` — replace a random proportion
  ``gamma`` of items with the ``[mask]`` token (Eq. 5).
* :class:`~repro.augment.reorder.Reorder` — shuffle a random contiguous
  sub-sequence of proportion ``beta`` (Eq. 6).

:mod:`repro.augment.compose` provides the random-pair sampler used by
the contrastive framework (two operators drawn from the augmentation
set are applied to the same sequence to form a positive pair) and a
sequential ``Compose`` for the RQ3 composition study.

The operators above are the scalar *reference* implementations: one
unpadded sequence per call.  :mod:`repro.augment.batched` provides
their matrix-form counterparts over left-padded ``(B, T)`` batches —
the hot path of ``pipeline="vectorized"`` training (see
``docs/PERFORMANCE.md``) — property-tested to follow the same
per-row laws.
"""

from repro.augment.base import Augmentation, Identity
from repro.augment.batched import (
    BatchCompose,
    BatchCrop,
    BatchIdentity,
    BatchMask,
    BatchPairSampler,
    BatchReorder,
    BatchScalarFallback,
    BatchedAugmentation,
    batched_operator,
    spawn_stream,
)
from repro.augment.compose import Compose, PairSampler
from repro.augment.correlation import ItemCorrelation
from repro.augment.crop import Crop
from repro.augment.extended import Insert, Substitute
from repro.augment.factory import make_operator, make_operator_set
from repro.augment.mask import Mask
from repro.augment.reorder import Reorder

__all__ = [
    "Augmentation",
    "BatchCompose",
    "BatchCrop",
    "BatchIdentity",
    "BatchMask",
    "BatchPairSampler",
    "BatchReorder",
    "BatchScalarFallback",
    "BatchedAugmentation",
    "Compose",
    "Crop",
    "Identity",
    "Insert",
    "ItemCorrelation",
    "Mask",
    "PairSampler",
    "Reorder",
    "Substitute",
    "batched_operator",
    "make_operator",
    "make_operator_set",
    "spawn_stream",
]
