"""Multi-head scaled dot-product self-attention (paper §3.4.2).

Supports the causal mask the paper applies so that the representation
at step *t* only depends on items at steps ≤ *t*, plus a key-padding
mask so left-padded batch positions contribute nothing.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.obs.profiling import profile_scope

_NEG_INF = -1e9


def causal_mask(length: int) -> np.ndarray:
    """Boolean ``(length, length)`` mask; ``True`` marks disallowed
    (future) connections, i.e. key position > query position."""
    return np.triu(np.ones((length, length), dtype=bool), k=1)


class MultiHeadSelfAttention(Module):
    """Multi-head self-attention with optional causal + padding masks.

    Parameters
    ----------
    dim:
        Model dimensionality ``d``; must be divisible by ``num_heads``.
    num_heads:
        Number of attention heads ``h`` (the paper uses 2).
    dropout:
        Dropout rate applied to the attention probabilities.
    rng:
        Generator for parameter init and dropout masks.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim={dim} must be divisible by num_heads={num_heads}")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.query_proj = Linear(dim, dim, rng=rng)
        self.key_proj = Linear(dim, dim, rng=rng)
        self.value_proj = Linear(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)
        self.attn_dropout = Dropout(dropout, rng=rng)

    def forward(
        self,
        x: Tensor,
        causal: bool = True,
        key_padding_mask: np.ndarray | None = None,
        return_probs: bool = False,
    ):
        """Attend within each sequence of the batch.

        Parameters
        ----------
        x:
            Input of shape ``(batch, length, dim)``.
        causal:
            Apply the upper-triangular future mask (default true, per
            the paper's next-item objective).
        key_padding_mask:
            Optional boolean ``(batch, length)`` array where ``True``
            marks padding positions that must never be attended to.
        return_probs:
            When true, also return the post-softmax attention
            probabilities as a raw ``(batch, heads, length, length)``
            array (pre-dropout; for analysis, not for training).
        """
        with profile_scope("nn.attention"):
            return self._attend(x, causal, key_padding_mask, return_probs)

    def _attend(
        self,
        x: Tensor,
        causal: bool,
        key_padding_mask: np.ndarray | None,
        return_probs: bool,
    ):
        batch, length, __ = x.shape
        q = self._split_heads(self.query_proj(x), batch, length)
        k = self._split_heads(self.key_proj(x), batch, length)
        v = self._split_heads(self.value_proj(x), batch, length)

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = q.matmul(k.swapaxes(-1, -2)) * scale  # (B, h, T, T)

        mask = np.zeros((batch, 1, length, length), dtype=bool)
        if causal:
            mask |= causal_mask(length)[None, None, :, :]
        if key_padding_mask is not None:
            key_padding_mask = np.asarray(key_padding_mask, dtype=bool)
            mask |= key_padding_mask[:, None, None, :]
        # Never mask an entire row: a fully-masked softmax row is NaN.
        # Rows that would be fully masked (padding queries) get unmasked
        # self-attention to their own position; their outputs are
        # ignored downstream because losses mask padding positions.
        fully_masked = mask.all(axis=-1, keepdims=True)
        diagonal = np.eye(length, dtype=bool)[None, None, :, :]
        mask = np.where(fully_masked & diagonal, False, mask)

        scores = scores.masked_fill(mask, _NEG_INF)
        probs = F.softmax(scores, axis=-1)
        raw_probs = probs.data.copy() if return_probs else None
        probs = self.attn_dropout(probs)
        context = probs.matmul(v)  # (B, h, T, dh)
        context = context.transpose(0, 2, 1, 3).reshape(batch, length, self.dim)
        out = self.out_proj(context)
        if return_probs:
            return out, raw_probs
        return out

    def _split_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(
            0, 2, 1, 3
        )
