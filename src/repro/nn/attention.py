"""Multi-head scaled dot-product self-attention (paper §3.4.2).

Supports the causal mask the paper applies so that the representation
at step *t* only depends on items at steps ≤ *t*, plus a key-padding
mask so left-padded batch positions contribute nothing.

Compute-core fast path
----------------------
The layer carries one packed ``(d, 3d)`` QKV projection instead of
three ``(d, d)`` linears (one BLAS call; the init draws the three
Xavier blocks from the shared generator in the legacy q, k, v order, so
seeded models are unchanged).  The fused forward folds score scaling,
mask fill, and softmax into :func:`repro.nn.functional.masked_softmax`,
pulls its masks from the shape-keyed cache in
:mod:`repro.nn.compute`, and — in no-grad paths with dropout inactive —
runs entirely on raw numpy with reusable scratch buffers for the
``(B, h, T, T)`` scores.  ``repro.nn.compute.use_fused(False)``
restores the seed's op-for-op composition (three sliced projections,
per-call mask allocation, ``masked_fill`` + ``softmax``); both paths
perform the same floating-point operations per value, so they agree to
the last bit given the same parameters.

Legacy checkpoints that stored ``query_proj`` / ``key_proj`` /
``value_proj`` separately load transparently: a state-dict upgrade hook
(:func:`pack_qkv_state`) packs them on the fly, and
:func:`unpack_qkv_state` converts back for export.
"""

from __future__ import annotations

import numpy as np

from repro.nn import compute, init
from repro.nn import functional as F
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module, register_state_dict_upgrade
from repro.nn.tensor import Tensor, is_grad_enabled
from repro.obs.profiling import profile_scope

_NEG_INF = -1e9
_LEGACY_QKV = ("query_proj", "key_proj", "value_proj")


def causal_mask(length: int) -> np.ndarray:
    """Boolean ``(length, length)`` mask; ``True`` marks disallowed
    (future) connections, i.e. key position > query position.

    Allocates a fresh (writable) array; the hot path uses the shared
    cache in :data:`repro.nn.compute.MASKS` instead.
    """
    return np.triu(np.ones((length, length), dtype=bool), k=1)


def pack_qkv_state(module: Module, state: dict) -> dict:
    """State-dict upgrade: pack legacy per-projection Q/K/V entries.

    For every ``qkv_proj.weight`` the module expects but the state dict
    lacks, look for the legacy ``{prefix}query_proj`` / ``key_proj`` /
    ``value_proj`` entries and concatenate them (weights along the
    output axis, biases end to end).  Registered with
    :func:`repro.nn.module.register_state_dict_upgrade`, so old
    checkpoints load without callers doing anything.
    """
    targets = [
        name
        for name, __ in module.named_parameters()
        if name.endswith("qkv_proj.weight") and name not in state
    ]
    if not targets:
        return state
    state = dict(state)
    for target in targets:
        prefix = target[: -len("qkv_proj.weight")]
        weights = [f"{prefix}{p}.weight" for p in _LEGACY_QKV]
        biases = [f"{prefix}{p}.bias" for p in _LEGACY_QKV]
        if not all(key in state for key in weights + biases):
            continue
        state[target] = np.concatenate([state.pop(key) for key in weights], axis=1)
        state[f"{prefix}qkv_proj.bias"] = np.concatenate(
            [state.pop(key) for key in biases], axis=0
        )
    return state


def unpack_qkv_state(state: dict) -> dict:
    """Rewrite packed ``qkv_proj`` entries into the legacy layout.

    The inverse of :func:`pack_qkv_state`, for exporting a checkpoint
    that older revisions (separate ``query_proj``/``key_proj``/
    ``value_proj`` linears) can load.
    """
    state = dict(state)
    for key in [k for k in state if k.endswith("qkv_proj.weight")]:
        prefix = key[: -len("qkv_proj.weight")]
        weight = state.pop(key)
        bias = state.pop(f"{prefix}qkv_proj.bias")
        for i, proj in enumerate(_LEGACY_QKV):
            dim = weight.shape[0]
            state[f"{prefix}{proj}.weight"] = weight[:, i * dim : (i + 1) * dim].copy()
            state[f"{prefix}{proj}.bias"] = bias[i * dim : (i + 1) * dim].copy()
    return state


register_state_dict_upgrade(pack_qkv_state)


class MultiHeadSelfAttention(Module):
    """Multi-head self-attention with optional causal + padding masks.

    Parameters
    ----------
    dim:
        Model dimensionality ``d``; must be divisible by ``num_heads``.
    num_heads:
        Number of attention heads ``h`` (the paper uses 2).
    dropout:
        Dropout rate applied to the attention probabilities.
    rng:
        Generator for parameter init and dropout masks.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim={dim} must be divisible by num_heads={num_heads}")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        # One packed (d, 3d) projection.  The throwaway generator below
        # never reaches the weights: the real init must draw three
        # (d, d) Xavier blocks from the shared `rng` in the legacy
        # q, k, v order so seeded parameters match the unpacked layout
        # column for column (and out_proj sees the same stream state).
        self.qkv_proj = Linear(dim, 3 * dim, rng=np.random.default_rng(0))
        self.qkv_proj.weight.data = np.concatenate(
            [init.xavier_uniform((dim, dim), rng) for __ in range(3)], axis=1
        )
        self.out_proj = Linear(dim, dim, rng=rng)
        self.attn_dropout = Dropout(dropout, rng=rng)

    def forward(
        self,
        x: Tensor,
        causal: bool = True,
        key_padding_mask: np.ndarray | None = None,
        return_probs: bool = False,
    ):
        """Attend within each sequence of the batch.

        Parameters
        ----------
        x:
            Input of shape ``(batch, length, dim)``.
        causal:
            Apply the upper-triangular future mask (default true, per
            the paper's next-item objective).
        key_padding_mask:
            Optional boolean ``(batch, length)`` array where ``True``
            marks padding positions that must never be attended to.
        return_probs:
            When true, also return the post-softmax attention
            probabilities as a raw ``(batch, heads, length, length)``
            array (pre-dropout; for analysis, not for training).
        """
        with profile_scope("nn.attention"):
            if compute.fused_enabled():
                return self._attend(x, causal, key_padding_mask, return_probs)
            return self._attend_reference(x, causal, key_padding_mask, return_probs)

    # ------------------------------------------------------------------
    # Fused path
    # ------------------------------------------------------------------
    def _mask(
        self, batch: int, length: int, causal: bool, key_padding_mask
    ) -> np.ndarray | None:
        """The combined attention mask, from the shape-keyed cache.

        Without a padding mask there is nothing batch-specific: the
        cached ``(T, T)`` causal triangle broadcasts directly (no
        ``(B, 1, T, T)`` materialization), or no mask at all.
        """
        if key_padding_mask is None:
            return compute.MASKS.causal(length) if causal else None
        return compute.MASKS.combined(causal, key_padding_mask, length)

    def _attend(
        self,
        x: Tensor,
        causal: bool,
        key_padding_mask: np.ndarray | None,
        return_probs: bool,
    ):
        batch, length, __ = x.shape
        # Python float, not np.float64: a numpy scalar is "strong" under
        # NEP 50 and would upcast float32 activations to float64.
        scale = 1.0 / float(np.sqrt(self.head_dim))
        mask = self._mask(batch, length, causal, key_padding_mask)

        dropout_active = self.training and self.attn_dropout.rate > 0.0
        if not is_grad_enabled() and not return_probs and not dropout_active:
            return self._attend_inference(x, mask, scale, batch, length)

        qkv = F.linear(x, self.qkv_proj.weight, self.qkv_proj.bias)
        if not return_probs:
            # Single-node attention core: identical arithmetic to the
            # composition below, one backward, no scatter buffers.
            drop = None
            if dropout_active:
                drop = F.dropout_mask(
                    (batch, self.num_heads, length, length),
                    self.attn_dropout.rate,
                    self.attn_dropout._rng,
                    dtype=x.data.dtype,
                )
            context = F.fused_attention(
                qkv, mask, self.num_heads, scale, fill=_NEG_INF, dropout_mask=drop
            )
            return self.out_proj(context)

        q, k, v = F.split_qkv_heads(qkv, self.num_heads)
        scores = q.matmul(k.swapaxes(-1, -2))  # (B, h, T, T)
        probs = F.masked_softmax(scores, mask, axis=-1, scale=scale, fill=_NEG_INF)
        raw_probs = probs.data.copy()
        probs = self.attn_dropout(probs)
        context = probs.matmul(v)  # (B, h, T, dh)
        context = context.transpose(0, 2, 1, 3).reshape(batch, length, self.dim)
        out = self.out_proj(context)
        return out, raw_probs

    def _attend_inference(
        self,
        x: Tensor,
        mask: np.ndarray | None,
        scale: float,
        batch: int,
        length: int,
    ) -> Tensor:
        """No-grad forward on raw numpy with pooled scratch buffers.

        Same floating-point operations as the fused Tensor path — the
        softmax runs in place on the pooled scores buffer, which no
        graph node retains (callers are inside ``no_grad()``).
        """
        dtype = x.data.dtype
        qkv = np.matmul(x.data, self.qkv_proj.weight.data) + self.qkv_proj.bias.data
        parts = qkv.reshape(batch, length, 3, self.num_heads, self.head_dim)
        q = np.ascontiguousarray(parts[:, :, 0].transpose(0, 2, 1, 3))
        k = parts[:, :, 1].transpose(0, 2, 1, 3)
        v = parts[:, :, 2].transpose(0, 2, 1, 3)

        scores = compute.SCRATCH.get(
            "attn.scores", (batch, self.num_heads, length, length), dtype
        )
        np.matmul(q, k.swapaxes(-1, -2), out=scores)
        scores *= scale
        if mask is not None:
            np.copyto(scores, _NEG_INF, where=mask)
        scores -= scores.max(axis=-1, keepdims=True)
        np.exp(scores, out=scores)
        scores /= scores.sum(axis=-1, keepdims=True)

        context = np.matmul(scores, v)  # (B, h, T, dh)
        context = np.ascontiguousarray(context.transpose(0, 2, 1, 3)).reshape(
            batch, length, self.dim
        )
        out = np.matmul(context, self.out_proj.weight.data) + self.out_proj.bias.data
        return Tensor(out)

    # ------------------------------------------------------------------
    # Reference (unfused) path — the seed's op-for-op composition
    # ------------------------------------------------------------------
    def _attend_reference(
        self,
        x: Tensor,
        causal: bool,
        key_padding_mask: np.ndarray | None,
        return_probs: bool,
    ):
        batch, length, __ = x.shape
        weight, bias, d = self.qkv_proj.weight, self.qkv_proj.bias, self.dim
        q = self._split_heads(
            x.matmul(weight[:, :d]) + bias[:d], batch, length
        )
        k = self._split_heads(
            x.matmul(weight[:, d : 2 * d]) + bias[d : 2 * d], batch, length
        )
        v = self._split_heads(
            x.matmul(weight[:, 2 * d :]) + bias[2 * d :], batch, length
        )

        scale = 1.0 / float(np.sqrt(self.head_dim))
        scores = q.matmul(k.swapaxes(-1, -2)) * scale  # (B, h, T, T)

        mask = np.zeros((batch, 1, length, length), dtype=bool)
        if causal:
            mask |= causal_mask(length)[None, None, :, :]
        if key_padding_mask is not None:
            key_padding_mask = np.asarray(key_padding_mask, dtype=bool)
            mask |= key_padding_mask[:, None, None, :]
        # Never mask an entire row: a fully-masked softmax row is NaN.
        # Rows that would be fully masked (padding queries) get unmasked
        # self-attention to their own position; their outputs are
        # ignored downstream because losses mask padding positions.
        fully_masked = mask.all(axis=-1, keepdims=True)
        diagonal = np.eye(length, dtype=bool)[None, None, :, :]
        mask = np.where(fully_masked & diagonal, False, mask)

        scores = scores.masked_fill(mask, _NEG_INF)
        probs = F.softmax(scores, axis=-1)
        raw_probs = probs.data.copy() if return_probs else None
        probs = self.attn_dropout(probs)
        context = probs.matmul(v)  # (B, h, T, dh)
        context = context.transpose(0, 2, 1, 3).reshape(batch, length, self.dim)
        out = self.out_proj(context)
        if return_probs:
            return out, raw_probs
        return out

    def _split_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(
            0, 2, 1, 3
        )
