"""Learning-rate schedules beyond the paper's linear decay.

:class:`repro.nn.optim.LinearDecaySchedule` implements the paper's
setting; this module adds the schedules commonly used when tuning
Transformer recommenders — warmup (stabilizes early attention
training), cosine annealing, and step decay — all sharing the same
``step()`` protocol so they are drop-in replacements in the trainers.
"""

from __future__ import annotations

import math

from repro.nn.optim import Optimizer


class _Schedule:
    """Shared plumbing: track steps, write ``optimizer.lr``."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.initial_lr = optimizer.lr
        self._step_count = 0

    def step(self) -> None:
        """Advance one step and update the optimizer's lr."""
        self._step_count += 1
        self.optimizer.lr = self.initial_lr * self._factor(self._step_count)

    def _factor(self, step: int) -> float:
        raise NotImplementedError

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr


class WarmupLinearSchedule(_Schedule):
    """Linear warmup to the base lr, then linear decay to a floor.

    The Transformer-training classic: lr ramps from ~0 over
    ``warmup_steps``, peaks at the optimizer's configured lr, then
    decays linearly so that at ``total_steps`` it reaches
    ``initial_lr * final_factor``.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        warmup_steps: int,
        total_steps: int,
        final_factor: float = 0.0,
    ) -> None:
        if warmup_steps < 0:
            raise ValueError("warmup_steps must be non-negative")
        if total_steps <= warmup_steps:
            raise ValueError("total_steps must exceed warmup_steps")
        if not 0.0 <= final_factor <= 1.0:
            raise ValueError("final_factor must be in [0, 1]")
        super().__init__(optimizer)
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.final_factor = final_factor

    def _factor(self, step: int) -> float:
        if self.warmup_steps and step <= self.warmup_steps:
            return step / self.warmup_steps
        progress = min(
            1.0,
            (step - self.warmup_steps) / (self.total_steps - self.warmup_steps),
        )
        return 1.0 - (1.0 - self.final_factor) * progress


class CosineSchedule(_Schedule):
    """Cosine annealing from the base lr down to a floor."""

    def __init__(
        self,
        optimizer: Optimizer,
        total_steps: int,
        final_factor: float = 0.0,
        warmup_steps: int = 0,
    ) -> None:
        if total_steps <= warmup_steps:
            raise ValueError("total_steps must exceed warmup_steps")
        if warmup_steps < 0:
            raise ValueError("warmup_steps must be non-negative")
        if not 0.0 <= final_factor <= 1.0:
            raise ValueError("final_factor must be in [0, 1]")
        super().__init__(optimizer)
        self.total_steps = total_steps
        self.final_factor = final_factor
        self.warmup_steps = warmup_steps

    def _factor(self, step: int) -> float:
        if self.warmup_steps and step <= self.warmup_steps:
            return step / self.warmup_steps
        progress = min(
            1.0,
            (step - self.warmup_steps) / (self.total_steps - self.warmup_steps),
        )
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.final_factor + (1.0 - self.final_factor) * cosine


class StepDecaySchedule(_Schedule):
    """Multiply the lr by ``gamma`` every ``step_size`` steps."""

    def __init__(
        self, optimizer: Optimizer, step_size: int, gamma: float = 0.1
    ) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def _factor(self, step: int) -> float:
        return self.gamma ** (step // self.step_size)


class ConstantSchedule(_Schedule):
    """No-op schedule (useful as an ablation control)."""

    def _factor(self, step: int) -> float:
        return 1.0
