"""Composite and fused differentiable operations.

Numerically sensitive composites (softmax, log-softmax, layer norm) are
implemented as fused primitives with analytic backward rules; the rest
compose the :class:`repro.nn.tensor.Tensor` primitives.

The compute-core fast path adds three more fused kernels —
:func:`linear` (matmul + bias in one graph node), :func:`masked_softmax`
(scale + mask-fill + softmax folded into one pass with an analytic
backward), and :func:`fused_linear_act` (linear + ReLU/GELU for the
transformer FFN) — plus :func:`split_qkv_heads`, which carves a packed
``(B, T, 3d)`` QKV projection into per-head query/key/value views.
Each fused kernel performs the same floating-point operations as the
composition it replaces, so switching fusion on or off
(:func:`repro.nn.compute.use_fused`) does not change results.
"""

from __future__ import annotations

import numpy as np
from scipy.special import expit

from repro.nn.tensor import Tensor, _unbroadcast


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    """Numerically stable logistic function."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    inner = 0.7978845608028654 * (x + 0.044715 * x * x * x)
    return 0.5 * x * (1.0 + inner.tanh())


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Fused softmax along ``axis`` with the standard max-shift trick."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray):
        # d softmax: s * (g - sum(g * s))
        dot = (grad * out).sum(axis=axis, keepdims=True)
        return ((x, out * (grad - dot)),)

    return Tensor._make(out, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Fused log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_norm
    soft = np.exp(out)

    def backward(grad: np.ndarray):
        return ((x, grad - soft * grad.sum(axis=axis, keepdims=True)),)

    return Tensor._make(out, (x,), backward)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-8) -> Tensor:
    """Fused layer normalization over the last axis.

    ``weight`` and ``bias`` have shape ``(d,)`` where ``d`` is the size
    of the last axis of ``x``.
    """
    mean = x.data.mean(axis=-1, keepdims=True)
    centered = x.data - mean
    var = (centered**2).mean(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    normalized = centered
    normalized *= inv_std  # in place: `centered` is not needed again
    out = normalized * weight.data
    out += bias.data
    d = x.data.shape[-1]

    def backward(grad: np.ndarray):
        grad_weight = (grad * normalized).reshape(-1, d).sum(axis=0)
        grad_bias = grad.reshape(-1, d).sum(axis=0)
        grad_norm = grad * weight.data
        # Standard layer-norm backward, with the same operation order as
        # the naive expression ((d*gn - sum(gn)) - n*sum(gn*n)) * (s/d)
        # but accumulated in place on one buffer:
        sum_gn = grad_norm.sum(axis=-1, keepdims=True)
        sum_gn_n = (grad_norm * normalized).sum(axis=-1, keepdims=True)
        grad_x = grad_norm
        grad_x *= d
        grad_x -= sum_gn
        grad_x -= normalized * sum_gn_n
        grad_x *= inv_std / d
        return ((x, grad_x), (weight, grad_weight), (bias, grad_bias))

    return Tensor._make(out, (x, weight, bias), backward)


def linear(x: Tensor, weight: Tensor, bias: Tensor) -> Tensor:
    """Fused affine map ``x @ weight + bias`` as a single graph node.

    Identical floating-point operations to the ``matmul`` + ``add``
    composition (the bias gradient reduces with the same
    ``_unbroadcast`` sum), but records one node instead of two and
    skips the intermediate pre-bias array's graph bookkeeping.
    """
    out = np.matmul(x.data, weight.data)
    out += bias.data  # in place: one fewer full-size temporary
    x_data, w_data = x.data, weight.data

    def backward(grad: np.ndarray):
        grad_x = np.matmul(grad, np.swapaxes(w_data, -1, -2))
        grad_w = _unbroadcast(
            np.matmul(np.swapaxes(x_data, -1, -2), grad), w_data.shape
        )
        grad_b = _unbroadcast(grad, bias.data.shape)
        return ((x, grad_x), (weight, grad_w), (bias, grad_b))

    return Tensor._make(out, (x, weight, bias), backward)


_GELU_C = 0.7978845608028654  # sqrt(2 / pi)
_GELU_A = 0.044715


def fused_linear_act(
    x: Tensor, weight: Tensor, bias: Tensor, activation: str = "relu"
) -> Tensor:
    """Fused ``activation(x @ weight + bias)`` (the FFN inner step).

    ``activation`` is ``"relu"`` or ``"gelu"`` (tanh approximation,
    same constants as :func:`gelu`).  One graph node replaces the
    matmul, bias add, and activation; the backward applies the analytic
    activation derivative to the incoming gradient before routing it
    through the affine map exactly as :func:`linear` does.
    """
    pre = np.matmul(x.data, weight.data)
    pre += bias.data
    if activation == "relu":
        act_mask = pre > 0
        out = pre * act_mask
        inner = None
    elif activation == "gelu":
        inner = np.tanh(_GELU_C * (pre + _GELU_A * pre * pre * pre))
        out = 0.5 * pre * (1.0 + inner)
    else:
        raise ValueError(
            f"unsupported activation {activation!r}; expected 'relu' or 'gelu'"
        )
    x_data, w_data = x.data, weight.data

    def backward(grad: np.ndarray):
        if activation == "relu":
            grad_pre = grad * act_mask
        else:
            # d/du [0.5 u (1 + t(u))] with t = tanh(c (u + a u^3))
            grad_pre = grad * (
                0.5 * (1.0 + inner)
                + 0.5
                * pre
                * (1.0 - inner * inner)
                * _GELU_C
                * (1.0 + 3.0 * _GELU_A * pre * pre)
            )
        grad_x = np.matmul(grad_pre, np.swapaxes(w_data, -1, -2))
        grad_w = _unbroadcast(
            np.matmul(np.swapaxes(x_data, -1, -2), grad_pre), w_data.shape
        )
        grad_b = _unbroadcast(grad_pre, bias.data.shape)
        return ((x, grad_x), (weight, grad_w), (bias, grad_b))

    return Tensor._make(out, (x, weight, bias), backward)


def masked_softmax(
    x: Tensor,
    mask: np.ndarray | None = None,
    axis: int = -1,
    scale: float | None = None,
    fill: float = -1e9,
) -> Tensor:
    """Fused ``softmax(masked_fill(x * scale, mask, fill))``.

    Folds the attention-score scaling, the mask fill, and the max-shift
    softmax into one pass over the scores.  ``mask`` (True = disallowed)
    broadcasts against ``x``; masked positions receive ``fill`` before
    the softmax — the same large-negative convention as the unfused
    path, so the two produce identical probabilities — and exactly zero
    gradient.
    """
    data = x.data
    if scale is not None:
        # Weak python scalars keep the input dtype under NEP 50; a
        # stray np.float64 scale would silently upcast float32 scores.
        scale = float(scale)
        data = data * scale
    fill = float(fill)
    if mask is not None:
        mask = np.broadcast_to(np.asarray(mask, dtype=bool), data.shape)
        data = np.where(mask, fill, data)
    shifted = data - data.max(axis=axis, keepdims=True)
    out = np.exp(shifted)
    out /= out.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray):
        dot = (grad * out).sum(axis=axis, keepdims=True)
        grad_x = out * (grad - dot)
        if mask is not None:
            grad_x = np.where(mask, 0.0, grad_x)
        if scale is not None:
            grad_x = grad_x * scale
        return ((x, grad_x),)

    return Tensor._make(out, (x,), backward)


def fused_attention(
    qkv: Tensor,
    mask: np.ndarray | None,
    num_heads: int,
    scale: float,
    fill: float = -1e9,
    dropout_mask: np.ndarray | None = None,
) -> Tensor:
    """Scaled-dot-product attention from a packed QKV, one graph node.

    Takes the packed ``(B, T, 3d)`` projection and produces the merged
    ``(B, T, d)`` context: head split, ``q @ kᵀ`` scaling, mask fill,
    softmax (in place on the scores buffer), optional dropout on the
    probabilities, ``probs @ v``, and the head merge — with a single
    analytic backward that writes the packed QKV gradient directly
    (no per-component zero-filled scatter buffers).

    Every floating-point operation matches the unfused composition
    (``split_qkv_heads`` + ``matmul`` + ``masked_softmax`` + dropout
    multiply + ``matmul``) value for value, so swapping it in changes
    no numerics — only the allocation count and graph size.

    ``dropout_mask`` is a pre-scaled inverted-dropout mask for the
    ``(B, h, T, T)`` probabilities (see :func:`dropout_mask`); pass
    ``None`` when dropout is inactive.
    """
    batch, length, packed = qkv.shape
    dim = packed // 3
    if dim * 3 != packed or dim % num_heads != 0:
        raise ValueError(
            f"packed dim {packed} is not 3 * (num_heads={num_heads} * head_dim)"
        )
    head_dim = dim // num_heads
    scale = float(scale)
    fill = float(fill)

    parts = qkv.data.reshape(batch, length, 3, num_heads, head_dim)
    # Materialize contiguous head views once: the forward and the four
    # backward batched matmuls all reuse them, and numpy's batched
    # matmul is much slower on strided 4-D operands.  Copying never
    # changes values.
    q = np.ascontiguousarray(parts[:, :, 0].transpose(0, 2, 1, 3))
    k = np.ascontiguousarray(parts[:, :, 1].transpose(0, 2, 1, 3))
    v = np.ascontiguousarray(parts[:, :, 2].transpose(0, 2, 1, 3))

    scores = np.matmul(q, k.swapaxes(-1, -2))  # (B, h, T, T)
    scores *= scale
    if mask is not None:
        mask = np.broadcast_to(np.asarray(mask, dtype=bool), scores.shape)
        np.copyto(scores, fill, where=mask)
    scores -= scores.max(axis=-1, keepdims=True)
    np.exp(scores, out=scores)
    scores /= scores.sum(axis=-1, keepdims=True)
    probs = scores  # softmax output, retained for the backward

    dropped = probs if dropout_mask is None else probs * dropout_mask
    context = np.matmul(dropped, v)  # (B, h, T, dh)
    out = np.ascontiguousarray(context.transpose(0, 2, 1, 3)).reshape(
        batch, length, dim
    )

    def backward(grad: np.ndarray):
        # Merge-heads backward: pure view reshuffle, no arithmetic.
        g = grad.reshape(batch, length, num_heads, head_dim).transpose(0, 2, 1, 3)
        # context = dropped @ v
        grad_dropped = np.matmul(g, v.swapaxes(-1, -2))
        grad_v = np.matmul(dropped.swapaxes(-1, -2), g)
        # dropout multiply
        if dropout_mask is not None:
            grad_probs = grad_dropped
            grad_probs *= dropout_mask
        else:
            grad_probs = grad_dropped
        # softmax (+ mask fill + scale), in place on grad_probs
        dot = (grad_probs * probs).sum(axis=-1, keepdims=True)
        grad_scores = grad_probs
        grad_scores -= dot
        grad_scores *= probs
        if mask is not None:
            np.copyto(grad_scores, 0.0, where=mask)
        grad_scores *= scale
        # scores = q @ kᵀ
        grad_q = np.matmul(grad_scores, k)
        grad_k = np.matmul(q.swapaxes(-1, -2), grad_scores).swapaxes(-1, -2)
        # Head split backward: write each third of the packed gradient
        # in place — no zero-filled scatter buffers to accumulate.
        grad_parts = np.empty_like(parts)
        grad_parts[:, :, 0] = grad_q.transpose(0, 2, 1, 3)
        grad_parts[:, :, 1] = grad_k.transpose(0, 2, 1, 3)
        grad_parts[:, :, 2] = grad_v.transpose(0, 2, 1, 3)
        return ((qkv, grad_parts.reshape(batch, length, packed)),)

    return Tensor._make(out, (qkv,), backward)


def split_qkv_heads(qkv: Tensor, num_heads: int) -> tuple[Tensor, Tensor, Tensor]:
    """Split a packed ``(B, T, 3d)`` QKV projection into head views.

    Returns ``(q, k, v)``, each ``(B, num_heads, T, d // num_heads)``
    and each bit-identical to projecting with the corresponding
    ``(d, d)`` weight column block separately and reshaping.  Each
    output's backward scatters its gradient into its third of the
    packed projection, so the packed matmul receives one accumulated
    gradient.
    """
    batch, length, packed = qkv.shape
    dim = packed // 3
    if dim * 3 != packed or dim % num_heads != 0:
        raise ValueError(
            f"packed dim {packed} is not 3 * (num_heads={num_heads} * head_dim)"
        )
    head_dim = dim // num_heads
    parts = qkv.data.reshape(batch, length, 3, num_heads, head_dim)
    qkv_dtype = qkv.data.dtype

    def component(index: int) -> Tensor:
        out = np.ascontiguousarray(parts[:, :, index].transpose(0, 2, 1, 3))

        def backward(grad: np.ndarray):
            full = np.zeros(
                (batch, length, 3, num_heads, head_dim), dtype=qkv_dtype
            )
            full[:, :, index] = grad.transpose(0, 2, 1, 3)
            return ((qkv, full.reshape(batch, length, packed)),)

        return Tensor._make(out, (qkv,), backward)

    return component(0), component(1), component(2)


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy of integer ``targets`` under ``logits``.

    ``logits`` has shape ``(..., num_classes)``; ``targets`` the same
    shape minus the final axis.
    """
    targets = np.asarray(targets)
    log_probs = log_softmax(logits, axis=-1)
    flat = log_probs.reshape(-1, logits.shape[-1])
    rows = np.arange(flat.shape[0])
    picked = flat[rows, targets.reshape(-1)]
    return -picked.mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean BCE between ``logits`` and binary ``targets``.

    Uses the stable formulation ``max(x, 0) - x*t + log(1 + exp(-|x|))``.
    """
    targets_arr = np.asarray(targets, dtype=logits.data.dtype)
    x = logits.data
    out = np.maximum(x, 0.0) - x * targets_arr + np.log1p(np.exp(-np.abs(x)))
    value = np.asarray(out.mean())
    sig = expit(x)
    scale = 1.0 / x.size

    def backward(grad: np.ndarray):
        return ((logits, grad * scale * (sig - targets_arr)),)

    return Tensor._make(value, (logits,), backward)


def softplus(x: Tensor) -> Tensor:
    """Numerically stable ``log(1 + exp(x))``.

    Useful for ranking losses: ``-log σ(x) = softplus(-x)`` and
    ``-log(1 - σ(x)) = softplus(x)``.
    """
    data = x.data
    out = np.maximum(data, 0.0) + np.log1p(np.exp(-np.abs(data)))
    sig = expit(data)

    def backward(grad: np.ndarray):
        return ((x, grad * sig),)

    return Tensor._make(out, (x,), backward)


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Cosine similarity between ``a`` and ``b`` along ``axis``."""
    dot = (a * b).sum(axis=axis)
    norm_a = ((a * a).sum(axis=axis) + eps).sqrt()
    norm_b = ((b * b).sum(axis=axis) + eps).sqrt()
    return dot / (norm_a * norm_b)


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Scale vectors along ``axis`` to unit L2 norm."""
    norm = ((x * x).sum(axis=axis, keepdims=True) + eps).sqrt()
    return x / norm


def dropout_mask(
    shape: tuple[int, ...], rate: float, rng: np.random.Generator, dtype=np.float64
) -> np.ndarray:
    """Sample an inverted-dropout mask (already scaled by 1/keep).

    The draw is always a float64 ``rng.random`` call (so the RNG stream
    is identical across precisions); only the emitted mask is cast to
    ``dtype``.
    """
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    keep = 1.0 - rate
    return (rng.random(shape) < keep).astype(dtype) / keep
