"""Composite and fused differentiable operations.

Numerically sensitive composites (softmax, log-softmax, layer norm) are
implemented as fused primitives with analytic backward rules; the rest
compose the :class:`repro.nn.tensor.Tensor` primitives.
"""

from __future__ import annotations

import numpy as np
from scipy.special import expit

from repro.nn.tensor import Tensor


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    """Numerically stable logistic function."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    inner = 0.7978845608028654 * (x + 0.044715 * x * x * x)
    return 0.5 * x * (1.0 + inner.tanh())


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Fused softmax along ``axis`` with the standard max-shift trick."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray):
        # d softmax: s * (g - sum(g * s))
        dot = (grad * out).sum(axis=axis, keepdims=True)
        return ((x, out * (grad - dot)),)

    return Tensor._make(out, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Fused log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_norm
    soft = np.exp(out)

    def backward(grad: np.ndarray):
        return ((x, grad - soft * grad.sum(axis=axis, keepdims=True)),)

    return Tensor._make(out, (x,), backward)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-8) -> Tensor:
    """Fused layer normalization over the last axis.

    ``weight`` and ``bias`` have shape ``(d,)`` where ``d`` is the size
    of the last axis of ``x``.
    """
    mean = x.data.mean(axis=-1, keepdims=True)
    centered = x.data - mean
    var = (centered**2).mean(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    normalized = centered * inv_std
    out = normalized * weight.data + bias.data
    d = x.data.shape[-1]

    def backward(grad: np.ndarray):
        grad_weight = (grad * normalized).reshape(-1, d).sum(axis=0)
        grad_bias = grad.reshape(-1, d).sum(axis=0)
        grad_norm = grad * weight.data
        # Standard layer-norm backward:
        # dx = (1/d) * inv_std * (d*gn - sum(gn) - n * sum(gn * n))
        sum_gn = grad_norm.sum(axis=-1, keepdims=True)
        sum_gn_n = (grad_norm * normalized).sum(axis=-1, keepdims=True)
        grad_x = (inv_std / d) * (d * grad_norm - sum_gn - normalized * sum_gn_n)
        return ((x, grad_x), (weight, grad_weight), (bias, grad_bias))

    return Tensor._make(out, (x, weight, bias), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy of integer ``targets`` under ``logits``.

    ``logits`` has shape ``(..., num_classes)``; ``targets`` the same
    shape minus the final axis.
    """
    targets = np.asarray(targets)
    log_probs = log_softmax(logits, axis=-1)
    flat = log_probs.reshape(-1, logits.shape[-1])
    rows = np.arange(flat.shape[0])
    picked = flat[rows, targets.reshape(-1)]
    return -picked.mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean BCE between ``logits`` and binary ``targets``.

    Uses the stable formulation ``max(x, 0) - x*t + log(1 + exp(-|x|))``.
    """
    targets_arr = np.asarray(targets, dtype=np.float64)
    x = logits.data
    out = np.maximum(x, 0.0) - x * targets_arr + np.log1p(np.exp(-np.abs(x)))
    value = np.asarray(out.mean())
    sig = expit(x)
    scale = 1.0 / x.size

    def backward(grad: np.ndarray):
        return ((logits, grad * scale * (sig - targets_arr)),)

    return Tensor._make(value, (logits,), backward)


def softplus(x: Tensor) -> Tensor:
    """Numerically stable ``log(1 + exp(x))``.

    Useful for ranking losses: ``-log σ(x) = softplus(-x)`` and
    ``-log(1 - σ(x)) = softplus(x)``.
    """
    data = x.data
    out = np.maximum(data, 0.0) + np.log1p(np.exp(-np.abs(data)))
    sig = expit(data)

    def backward(grad: np.ndarray):
        return ((x, grad * sig),)

    return Tensor._make(out, (x,), backward)


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Cosine similarity between ``a`` and ``b`` along ``axis``."""
    dot = (a * b).sum(axis=axis)
    norm_a = ((a * a).sum(axis=axis) + eps).sqrt()
    norm_b = ((b * b).sum(axis=axis) + eps).sqrt()
    return dot / (norm_a * norm_b)


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Scale vectors along ``axis`` to unit L2 norm."""
    norm = ((x * x).sum(axis=axis, keepdims=True) + eps).sqrt()
    return x / norm


def dropout_mask(
    shape: tuple[int, ...], rate: float, rng: np.random.Generator
) -> np.ndarray:
    """Sample an inverted-dropout mask (already scaled by 1/keep)."""
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    keep = 1.0 - rate
    return (rng.random(shape) < keep).astype(np.float64) / keep
