"""Compute-core fast-path machinery: fused-kernel switch, shape-keyed
mask caching, and reusable scratch buffers.

Three coordinated pieces keep the encoder hot path off the allocator:

* **Fused-kernel switch** — :func:`fused_enabled` gates the packed-QKV
  / fused-masked-softmax / fused-FFN paths in
  :mod:`repro.nn.attention` and :mod:`repro.nn.transformer`.  Fusion is
  on by default; :func:`use_fused` scopes it off so equivalence tests
  and the throughput benchmark can reproduce the seed's unfused
  composition op-for-op from the same parameters.
* **Mask cache** — :class:`MaskCache`, an LRU keyed on
  ``(batch, length, causal, padding-mask fingerprint)``.  The causal
  ``np.triu`` mask is built once per length; combined causal+padding
  masks (including the fully-masked-row diagonal fix) are built once
  per distinct padding pattern.  Eval and serving repeatedly attend
  over the same user batches, so steady-state mask construction drops
  to a dictionary hit.
* **Scratch buffers** — :class:`ScratchPool`, a per-thread pool of
  reusable arrays for the ``(B, h, T, T)`` attention scores/probs in
  no-grad (eval/serve) paths, where no autograd node retains the
  intermediate.  Buffers are keyed on ``(tag, shape, dtype)`` and
  thread-local, so the threaded HTTP server never shares one.

See ``docs/PERFORMANCE.md`` ("Compute core") for the full inventory
and the measured effect (``benchmarks/test_encoder_throughput.py``).
"""

from __future__ import annotations

import contextlib
import threading
from collections import OrderedDict

import numpy as np

_FUSED_ENABLED = True


def fused_enabled() -> bool:
    """Whether the fused attention/FFN kernels are active."""
    return _FUSED_ENABLED


@contextlib.contextmanager
def use_fused(enabled: bool = True):
    """Scope the fused-kernel switch (e.g. ``use_fused(False)`` for the
    reference composition in equivalence tests and benchmarks)."""
    global _FUSED_ENABLED
    previous = _FUSED_ENABLED
    _FUSED_ENABLED = bool(enabled)
    try:
        yield
    finally:
        _FUSED_ENABLED = previous


# ----------------------------------------------------------------------
# Shape-keyed attention-mask cache
# ----------------------------------------------------------------------
class MaskCache:
    """LRU cache of boolean attention masks.

    Two families of entries:

    * causal masks, keyed by sequence length — ``(T, T)`` upper
      triangles shared by every batch of that length;
    * combined masks, keyed by ``(batch, length, causal, fingerprint)``
      where the fingerprint is the padding mask's exact bytes —
      ``(batch, 1, T, T)`` arrays with the fully-masked-row diagonal
      fix already applied.

    Cached arrays are handed out with the writeable flag cleared so an
    accidental in-place edit cannot poison later hits.
    """

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _get(self, key: tuple):
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
            return value

    def _put(self, key: tuple, value: np.ndarray) -> np.ndarray:
        value.setflags(write=False)
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return value

    def causal(self, length: int) -> np.ndarray:
        """The ``(length, length)`` future mask (True = disallowed)."""
        key = ("causal", length)
        cached = self._get(key)
        if cached is not None:
            return cached
        mask = np.triu(np.ones((length, length), dtype=bool), k=1)
        return self._put(key, mask)

    def combined(
        self, causal: bool, key_padding_mask: np.ndarray, length: int
    ) -> np.ndarray:
        """Causal+padding mask ``(batch, 1, T, T)`` with NaN-row fix.

        Matches the reference construction bit-for-bit: rows that would
        be entirely masked (padding queries) get their own diagonal
        position unmasked so softmax never sees an all‑``-inf`` row.
        """
        key_padding_mask = np.ascontiguousarray(key_padding_mask, dtype=bool)
        batch = key_padding_mask.shape[0]
        key = ("combined", batch, length, causal, key_padding_mask.tobytes())
        cached = self._get(key)
        if cached is not None:
            return cached

        if causal:
            mask = np.logical_or(
                self.causal(length)[None, None, :, :],
                key_padding_mask[:, None, None, :],
            )
            # A row q is fully masked iff every key k <= q is padding
            # (the causal triangle already removes k > q): a running AND
            # over the padding mask, instead of a (B, 1, T, T) .all().
            fully_masked = np.logical_and.accumulate(key_padding_mask, axis=1)
        else:
            mask = np.broadcast_to(
                key_padding_mask[:, None, None, :], (batch, 1, length, length)
            ).copy()
            fully_masked = np.broadcast_to(
                key_padding_mask.all(axis=1)[:, None], (batch, length)
            )
        rows, positions = np.nonzero(fully_masked)
        mask[rows, 0, positions, positions] = False
        return self._put(key, mask)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def info(self) -> dict[str, int]:
        """Cache statistics (for tests and the obs layer)."""
        return {
            "entries": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
        }


#: Process-wide mask cache used by :mod:`repro.nn.attention`.
MASKS = MaskCache()


# ----------------------------------------------------------------------
# Reusable scratch buffers for no-grad paths
# ----------------------------------------------------------------------
class ScratchPool:
    """Per-thread reusable arrays for no-grad intermediates.

    ``get(tag, shape, dtype)`` returns the same array on every call
    with the same key from the same thread, so eval/serve loops that
    stream equally-shaped batches stop allocating their ``(B, h, T,
    T)`` score tensors.  Callers own the contents only until their next
    ``get`` with the same tag — never hand a scratch buffer to code
    that retains it (grad-mode code must not use the pool at all).
    """

    def __init__(self, max_entries: int = 16) -> None:
        self.max_entries = max_entries
        self._local = threading.local()

    def _entries(self) -> OrderedDict:
        entries = getattr(self._local, "entries", None)
        if entries is None:
            entries = OrderedDict()
            self._local.entries = entries
        return entries

    def get(self, tag: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """A reusable C-contiguous array of ``shape``/``dtype``.

        Contents are uninitialized (whatever the previous user left);
        callers must fully overwrite it.
        """
        entries = self._entries()
        key = (tag, tuple(shape), np.dtype(dtype))
        buffer = entries.get(key)
        if buffer is None:
            buffer = np.empty(shape, dtype=dtype)
            entries[key] = buffer
            while len(entries) > self.max_entries:
                entries.popitem(last=False)
        else:
            entries.move_to_end(key)
        return buffer

    def clear(self) -> None:
        self._entries().clear()


#: Process-wide scratch pool for the attention no-grad fast path.
SCRATCH = ScratchPool()


def clear_caches() -> None:
    """Drop every cached mask and scratch buffer (tests, memory audits)."""
    MASKS.clear()
    SCRATCH.clear()
