"""Standard neural-network layers.

``Linear``, ``Embedding``, ``LayerNorm``, ``Dropout`` and a small
``Sequential`` container — the building blocks the SASRec / CL4SRec
encoder and the baselines are assembled from.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn import compute, init
from repro.nn import functional as F
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class Linear(Module):
    """Affine transformation ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input / output dimensionality.
    bias:
        Whether to add a learnable bias (default true).
    rng:
        Generator used for Xavier-uniform weight init.  Callers that
        need the paper's truncated-normal init overwrite ``weight.data``
        after construction (see :class:`repro.models.sasrec.SASRec`).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if self.bias is None:
            return x.matmul(self.weight)
        if compute.fused_enabled():
            return F.linear(x, self.weight, self.bias)
        return x.matmul(self.weight) + self.bias

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class Embedding(Module):
    """A lookup table mapping integer ids to dense vectors.

    Index 0 is conventionally the padding id in this library; callers
    can zero its row and it will stay (near) zero because the backward
    pass only touches gathered rows (and padding positions are masked
    out of the loss).
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator | None = None,
        std: float = 0.02,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(rng.normal(0.0, std, size=(num_embeddings, embedding_dim)))

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding indices out of range [0, {self.num_embeddings}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        return self.weight.take_rows(indices)

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"


class LayerNorm(Module):
    """Layer normalization over the last axis with learnable affine."""

    def __init__(self, dim: int, eps: float = 1e-8) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(init.ones((dim,)))
        self.bias = Parameter(init.zeros((dim,)))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)

    def __repr__(self) -> str:
        return f"LayerNorm({self.dim})"


class Dropout(Module):
    """Inverted dropout; identity in eval mode.

    Randomness comes from the generator handed to the constructor so
    that training runs are reproducible end-to-end.
    """

    def __init__(self, rate: float, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        mask = F.dropout_mask(x.shape, self.rate, self._rng, dtype=x.dtype)
        return x * Tensor(mask)

    def __repr__(self) -> str:
        return f"Dropout({self.rate})"


class Sequential(Module):
    """Apply modules (or plain callables) in order."""

    def __init__(self, *steps) -> None:
        super().__init__()
        self._steps: list[Callable] = []
        for i, step in enumerate(steps):
            if isinstance(step, Module):
                self.add_module(f"step{i}", step)
            self._steps.append(step)

    def forward(self, x):
        for step in self._steps:
            x = step(x)
        return x

    def __len__(self) -> int:
        return len(self._steps)
