"""Persist model state dicts as ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Mapping

import numpy as np


def save_state_dict(state: Mapping[str, np.ndarray], path: str | os.PathLike) -> None:
    """Write a flat ``name -> array`` mapping to ``path`` (.npz).

    Dots in parameter names are preserved; ``np.savez`` handles
    arbitrary string keys.
    """
    arrays = {name: np.asarray(values) for name, values in state.items()}
    with open(path, "wb") as handle:
        np.savez(handle, **arrays)


def load_state_dict(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state_dict`."""
    with np.load(path) as archive:
        return {name: archive[name].copy() for name in archive.files}
