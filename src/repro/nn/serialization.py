"""Persist model state dicts as ``.npz`` archives.

All writers here are **crash-safe**: the archive is first written to a
temporary file in the destination directory, flushed and fsync'd, and
then moved over the final name with :func:`os.replace` (atomic on
POSIX).  A reader therefore never observes a half-written archive — it
sees either the old file or the new one.
"""

from __future__ import annotations

import os
import tempfile
from typing import BinaryIO, Callable, Mapping

import numpy as np


class CheckpointError(ValueError):
    """A checkpoint archive could not be written, read, or restored.

    Raised with the offending path in the message for corruption
    (truncated or bit-flipped archives, checksum mismatches) and for
    restore-time shape/key mismatches against a differently-configured
    model — instead of a bare NumPy or zipfile error.  Subclasses
    :class:`ValueError` so existing ``except ValueError`` callers keep
    working.
    """


def atomic_write(path: str | os.PathLike, write: Callable[[BinaryIO], None]) -> None:
    """Write a file atomically: temp file + fsync + ``os.replace``.

    ``write`` receives the open binary handle.  On any failure the temp
    file is removed and the previous content of ``path`` (if any) is
    left untouched.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, temp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            write(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``."""
    atomic_write(path, lambda handle: handle.write(data))


def save_state_dict(state: Mapping[str, np.ndarray], path: str | os.PathLike) -> None:
    """Write a flat ``name -> array`` mapping to ``path`` (.npz).

    Dots in parameter names are preserved; ``np.savez`` handles
    arbitrary string keys.  The write is atomic (see module docstring).
    """
    arrays = {name: np.asarray(values) for name, values in state.items()}
    atomic_write(path, lambda handle: np.savez(handle, **arrays))


def load_state_dict(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state_dict`.

    Raises :class:`CheckpointError` (with the path) when the archive is
    missing, truncated, or otherwise unreadable.
    """
    try:
        with np.load(path) as archive:
            return {name: archive[name].copy() for name in archive.files}
    except CheckpointError:
        raise
    except Exception as error:
        raise CheckpointError(f"{os.fspath(path)}: unreadable archive: {error}") from error
