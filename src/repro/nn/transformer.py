"""Transformer encoder blocks (paper §3.4).

Each block is the post-norm residual composition the paper writes out
in Eq. (14):

.. math::

    F = \\mathrm{LayerNorm}(H + \\mathrm{Dropout}(\\mathrm{MH}(H)))

    \\mathrm{Trm}(H) = \\mathrm{LayerNorm}(F + \\mathrm{Dropout}(\\mathrm{PFFN}(F)))

with a position-wise feed-forward network
``FFN(h) = ReLU(h W1 + b1) W2 + b2`` (Eq. 11).
"""

from __future__ import annotations

import numpy as np

from repro.nn import compute
from repro.nn import functional as F
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.layers import Dropout, LayerNorm, Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.obs.profiling import profile_scope


class PositionwiseFeedForward(Module):
    """Two-layer position-wise MLP (Eq. 11).

    ``activation`` is ``"relu"`` (the paper's choice and the default)
    or ``"gelu"``.  The inner step runs as the fused
    :func:`repro.nn.functional.fused_linear_act` kernel — one graph
    node for ``act(x W1 + b1)`` — unless fusion is scoped off
    (:func:`repro.nn.compute.use_fused`); both paths compute the same
    floating-point values.
    """

    def __init__(
        self,
        dim: int,
        hidden_dim: int,
        rng: np.random.Generator | None = None,
        activation: str = "relu",
    ) -> None:
        super().__init__()
        if activation not in ("relu", "gelu"):
            raise ValueError(
                f"unsupported activation {activation!r}; expected 'relu' or 'gelu'"
            )
        self.activation = activation
        self.fc1 = Linear(dim, hidden_dim, rng=rng)
        self.fc2 = Linear(hidden_dim, dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        if compute.fused_enabled():
            hidden = F.fused_linear_act(
                x, self.fc1.weight, self.fc1.bias, self.activation
            )
        elif self.activation == "relu":
            hidden = F.relu(self.fc1(x))
        else:
            hidden = F.gelu(self.fc1(x))
        return self.fc2(hidden)


class TransformerEncoderLayer(Module):
    """One Trm block: self-attention + PFFN, each with residual,
    dropout and post-layer-norm (Eq. 12/14)."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        hidden_dim: int | None = None,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        hidden_dim = hidden_dim if hidden_dim is not None else 4 * dim
        self.attention = MultiHeadSelfAttention(dim, num_heads, dropout=dropout, rng=rng)
        self.feed_forward = PositionwiseFeedForward(dim, hidden_dim, rng=rng)
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)
        self.dropout1 = Dropout(dropout, rng=rng)
        self.dropout2 = Dropout(dropout, rng=rng)

    def forward(
        self,
        x: Tensor,
        causal: bool = True,
        key_padding_mask: np.ndarray | None = None,
    ) -> Tensor:
        attended = self.attention(x, causal=causal, key_padding_mask=key_padding_mask)
        x = self.norm1(x + self.dropout1(attended))
        transformed = self.feed_forward(x)
        return self.norm2(x + self.dropout2(transformed))


class TransformerEncoder(Module):
    """A stack of :class:`TransformerEncoderLayer` blocks (paper: L=2)."""

    def __init__(
        self,
        num_layers: int,
        dim: int,
        num_heads: int,
        hidden_dim: int | None = None,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.num_layers = num_layers
        self.layers: list[TransformerEncoderLayer] = []
        for i in range(num_layers):
            layer = TransformerEncoderLayer(
                dim, num_heads, hidden_dim=hidden_dim, dropout=dropout, rng=rng
            )
            self.add_module(f"layer{i}", layer)
            self.layers.append(layer)

    def forward(
        self,
        x: Tensor,
        causal: bool = True,
        key_padding_mask: np.ndarray | None = None,
    ) -> Tensor:
        with profile_scope("nn.encoder"):
            for layer in self.layers:
                x = layer(x, causal=causal, key_padding_mask=key_padding_mask)
            return x
