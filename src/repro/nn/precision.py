"""The dtype policy of the compute core.

Everything in :mod:`repro.nn` historically ran in ``float64``: cheap at
CPU gradcheck scale and tight for finite-difference checks.  At serving
and benchmark scale the picture inverts — SASRec and BERT4Rec train and
serve in float32, and float64 roughly halves BLAS throughput while
doubling memory bandwidth on the matmuls that dominate the encoder.

This module makes the precision an explicit, scoped policy instead of a
hard-coded constant:

* :func:`default_dtype` / :func:`set_default_dtype` — the process-wide
  dtype used when a :class:`~repro.nn.tensor.Tensor` is created from
  non-float data (python lists, ints, bools).  Float arrays keep their
  own dtype, so a float32 model propagates float32 activations without
  any global state.
* :func:`precision` — a context manager scoping the default, used by
  the training loops (``TrainConfig.dtype`` et al.) so a float32 run
  cannot leak its policy into subsequent float64 code.
* :func:`resolve_dtype` — maps config/CLI spellings (``"float32"``,
  ``"float64"``, ``"fp32"``, numpy dtypes, ``None``) onto a canonical
  numpy dtype.

The default stays ``float64`` — goldens, gradchecks and every existing
call site are bit-identical.  Float32 is strictly opt-in (per training
config, per engine, or per CLI ``--dtype`` flag); see
``docs/PERFORMANCE.md`` ("Compute core") for when it is safe.
"""

from __future__ import annotations

import contextlib

import numpy as np

#: Dtypes a Tensor may hold.  Everything else (ints, bools, lists) is
#: coerced to the current default on construction.
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

_DEFAULT_DTYPE = np.dtype(np.float64)

_ALIASES = {
    "float32": np.dtype(np.float32),
    "fp32": np.dtype(np.float32),
    "single": np.dtype(np.float32),
    "float64": np.dtype(np.float64),
    "fp64": np.dtype(np.float64),
    "double": np.dtype(np.float64),
}


def resolve_dtype(spec) -> np.dtype:
    """Canonicalize a dtype spec (string, numpy dtype, or ``None``).

    ``None`` resolves to the current default, so configs can leave the
    policy untouched by default.  Unsupported dtypes (integers,
    float16) raise ``ValueError`` — the autograd core only supports
    float32/float64.
    """
    if spec is None:
        return _DEFAULT_DTYPE
    if isinstance(spec, str):
        try:
            return _ALIASES[spec.lower()]
        except KeyError:
            raise ValueError(
                f"unsupported dtype {spec!r}; expected one of "
                f"{sorted(set(_ALIASES))}"
            ) from None
    try:
        dtype = np.dtype(spec)
    except TypeError:
        raise ValueError(f"unsupported dtype spec {spec!r}") from None
    if dtype not in SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported dtype {dtype}; the compute core supports "
            f"float32 and float64 only"
        )
    return dtype


def default_dtype() -> np.dtype:
    """The dtype non-float data is coerced to on Tensor creation."""
    return _DEFAULT_DTYPE


def set_default_dtype(spec) -> np.dtype:
    """Set the process-wide default dtype; returns the previous one.

    Prefer the scoped :func:`precision` context manager — a bare set
    leaks the policy into unrelated code.
    """
    global _DEFAULT_DTYPE
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = resolve_dtype(spec)
    return previous


@contextlib.contextmanager
def precision(spec):
    """Scope the default dtype: ``with precision("float32"): ...``."""
    previous = set_default_dtype(spec)
    try:
        yield _DEFAULT_DTYPE
    finally:
        set_default_dtype(previous)


def is_float_dtype(dtype) -> bool:
    """Whether ``dtype`` is one the Tensor core keeps as-is."""
    return np.dtype(dtype) in SUPPORTED_DTYPES


def grad_atol(dtype, float64_atol: float = 1e-6, float32_atol: float = 2e-2) -> float:
    """Finite-difference tolerance appropriate for ``dtype``.

    Central differences in float32 carry ~``sqrt(eps)`` noise; the
    gradcheck suite uses this helper so both precisions share one
    harness with honest tolerances.
    """
    return float32_atol if np.dtype(dtype) == np.dtype(np.float32) else float64_atol
