"""Weight initialization schemes.

The paper (§4.1.4) initializes all parameters from a truncated normal
distribution restricted to ``[-0.01, 0.01]``; :func:`truncated_normal`
implements that via rejection-free inverse-CDF sampling.  Xavier and He
initializers are provided for the baselines and general use.
"""

from __future__ import annotations

import numpy as np
from scipy import stats


def truncated_normal(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    mean: float = 0.0,
    std: float = 0.02,
    low: float = -0.01,
    high: float = 0.01,
) -> np.ndarray:
    """Sample a truncated normal restricted to ``[low, high]``.

    Uses the inverse-CDF method via :mod:`scipy.stats.truncnorm`, so no
    rejection loop is needed and the output is deterministic given the
    generator state.
    """
    a = (low - mean) / std
    b = (high - mean) / std
    u = rng.random(shape)
    return stats.truncnorm.ppf(u, a, b, loc=mean, scale=std)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization for 2-D weights."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal initialization (for ReLU networks)."""
    fan_in, __ = _fans(shape)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialization (biases, layer-norm shift)."""
    return np.zeros(shape, dtype=np.float64)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    """All-one initialization (layer-norm scale)."""
    return np.ones(shape, dtype=np.float64)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("initializer shapes must have at least one axis")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[0] * receptive, shape[1] * receptive
