"""A from-scratch, numpy-backed neural network library.

This subpackage is the deep-learning substrate for the CL4SRec
reproduction.  The execution environment provides no PyTorch or
TensorFlow, so we implement the pieces the paper relies on ourselves:

* :mod:`repro.nn.tensor` — a reverse-mode automatic differentiation
  engine over numpy arrays (broadcast-aware, with a topological-order
  backward pass).
* :mod:`repro.nn.functional` — softmax, activations, losses and other
  composite operations.
* :mod:`repro.nn.module` / :mod:`repro.nn.layers` — ``Module`` /
  ``Parameter`` abstractions and the standard layers (``Linear``,
  ``Embedding``, ``LayerNorm``, ``Dropout``).
* :mod:`repro.nn.attention` / :mod:`repro.nn.transformer` — multi-head
  self-attention and the Transformer encoder used by SASRec / CL4SRec.
* :mod:`repro.nn.rnn` — the GRU used by the GRU4Rec baseline.
* :mod:`repro.nn.optim` — SGD and Adam with linear learning-rate decay.
* :mod:`repro.nn.init` — weight initializers, including the truncated
  normal initialization the paper prescribes.
* :mod:`repro.nn.serialization` — ``.npz`` state-dict persistence.
* :mod:`repro.nn.precision` / :mod:`repro.nn.compute` — the compute
  core's dtype policy (float64 default, float32 opt-in) and fast-path
  machinery (fused-kernel switch, shape-keyed mask cache, scratch
  buffers).

Every differentiable primitive is validated against finite differences
in the test suite.
"""

from repro.nn import compute, functional, init, precision
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.checkpoint import load_checkpoint, save_checkpoint
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear, Sequential
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, GradientClipper, LinearDecaySchedule, Optimizer
from repro.nn.rnn import GRU, GRUCell
from repro.nn.schedules import (
    ConstantSchedule,
    CosineSchedule,
    StepDecaySchedule,
    WarmupLinearSchedule,
)
from repro.nn.serialization import (
    CheckpointError,
    atomic_write,
    atomic_write_bytes,
    load_state_dict,
    save_state_dict,
)
from repro.nn.tensor import Tensor, concat, no_grad, stack, tensor
from repro.nn.transformer import TransformerEncoder, TransformerEncoderLayer

__all__ = [
    "Adam",
    "CheckpointError",
    "atomic_write",
    "atomic_write_bytes",
    "ConstantSchedule",
    "CosineSchedule",
    "Dropout",
    "Embedding",
    "GRU",
    "GRUCell",
    "GradientClipper",
    "LayerNorm",
    "Linear",
    "LinearDecaySchedule",
    "Module",
    "MultiHeadSelfAttention",
    "Optimizer",
    "Parameter",
    "SGD",
    "Sequential",
    "StepDecaySchedule",
    "Tensor",
    "WarmupLinearSchedule",
    "TransformerEncoder",
    "TransformerEncoderLayer",
    "compute",
    "concat",
    "functional",
    "init",
    "load_checkpoint",
    "load_state_dict",
    "no_grad",
    "precision",
    "save_checkpoint",
    "save_state_dict",
    "stack",
    "tensor",
]
