"""Full training-state checkpoints: model + optimizer + step counters.

``save_state_dict`` persists only parameters; resuming *training* also
needs the Adam moment estimates and step counts, otherwise the first
post-restore updates are biased.  A :func:`save_checkpoint` /
:func:`load_checkpoint` pair captures both, so a training run can be
stopped and resumed bit-for-bit (modulo data-order randomness, which
callers control through their seeds).

Writes are atomic (temp file + fsync + ``os.replace``); restore errors
caused by a differently-configured model — missing/unexpected parameter
names, shape mismatches — surface as :class:`CheckpointError` carrying
the offending path, never a bare NumPy broadcasting error.  Crash-safe
rotation, checksums and recovery live one level up, in
:mod:`repro.runtime.checkpointing`.
"""

from __future__ import annotations

import os

import numpy as np

from repro.nn.module import Module
from repro.nn.optim import Optimizer
from repro.nn.serialization import CheckpointError, atomic_write


def save_checkpoint(
    path: str | os.PathLike,
    model: Module,
    optimizer: Optimizer | None = None,
    extra: dict[str, float] | None = None,
) -> None:
    """Write model (and optionally optimizer) state to one ``.npz``."""
    payload: dict[str, np.ndarray] = {}
    for name, values in model.state_dict().items():
        payload[f"model/{name}"] = values
    if optimizer is not None:
        for name, values in optimizer.state_dict().items():
            payload[f"optim/{name}"] = values
    for name, value in (extra or {}).items():
        payload[f"extra/{name}"] = np.asarray(value)
    atomic_write(path, lambda handle: np.savez(handle, **payload))


def load_checkpoint(
    path: str | os.PathLike,
    model: Module,
    optimizer: Optimizer | None = None,
) -> dict[str, float]:
    """Restore model (and optimizer) state; returns the extras dict.

    Raises :class:`CheckpointError` naming ``path`` when the archive is
    unreadable or its contents do not fit the given model/optimizer
    (key-set or shape mismatch from a differently-configured model).
    """
    try:
        with np.load(path, allow_pickle=False) as archive:
            model_state = {
                name[len("model/") :]: archive[name]
                for name in archive.files
                if name.startswith("model/")
            }
            optim_state = {
                name[len("optim/") :]: archive[name]
                for name in archive.files
                if name.startswith("optim/")
            }
            extras = {
                name[len("extra/") :]: float(archive[name])
                for name in archive.files
                if name.startswith("extra/")
            }
    except Exception as error:
        raise CheckpointError(
            f"{os.fspath(path)}: unreadable checkpoint archive: {error}"
        ) from error
    try:
        model.load_state_dict(model_state)
    except (KeyError, ValueError) as error:
        raise CheckpointError(
            f"{os.fspath(path)}: checkpoint does not fit this model "
            f"(was it saved from a different configuration?): {error}"
        ) from error
    if optimizer is not None:
        if not optim_state:
            raise ValueError(f"{path} contains no optimizer state")
        try:
            optimizer.load_state_dict(optim_state)
        except (KeyError, IndexError, ValueError) as error:
            raise CheckpointError(
                f"{os.fspath(path)}: checkpoint does not fit this optimizer: "
                f"{error}"
            ) from error
    return extras
