"""Full training-state checkpoints: model + optimizer + step counters.

``save_state_dict`` persists only parameters; resuming *training* also
needs the Adam moment estimates and step counts, otherwise the first
post-restore updates are biased.  A :func:`save_checkpoint` /
:func:`load_checkpoint` pair captures both, so a training run can be
stopped and resumed bit-for-bit (modulo data-order randomness, which
callers control through their seeds).
"""

from __future__ import annotations

import os

import numpy as np

from repro.nn.module import Module
from repro.nn.optim import Adam, Optimizer, SGD


def _optimizer_state(optimizer: Optimizer) -> dict[str, np.ndarray]:
    state: dict[str, np.ndarray] = {
        "__lr__": np.asarray(optimizer.lr),
    }
    if isinstance(optimizer, Adam):
        state["__kind__"] = np.asarray("adam")
        state["__step__"] = np.asarray(optimizer._step_count)
        for index, (m, v) in enumerate(zip(optimizer._m, optimizer._v)):
            state[f"m.{index}"] = m
            state[f"v.{index}"] = v
    elif isinstance(optimizer, SGD):
        state["__kind__"] = np.asarray("sgd")
        for index, velocity in enumerate(optimizer._velocity):
            state[f"velocity.{index}"] = velocity
    else:
        raise TypeError(f"unsupported optimizer type {type(optimizer).__name__}")
    return state


def _restore_optimizer(optimizer: Optimizer, state: dict[str, np.ndarray]) -> None:
    kind = str(state["__kind__"])
    optimizer.lr = float(state["__lr__"])
    if isinstance(optimizer, Adam):
        if kind != "adam":
            raise ValueError(f"checkpoint holds a {kind} state, optimizer is Adam")
        optimizer._step_count = int(state["__step__"])
        for index in range(len(optimizer.params)):
            optimizer._m[index][:] = state[f"m.{index}"]
            optimizer._v[index][:] = state[f"v.{index}"]
    elif isinstance(optimizer, SGD):
        if kind != "sgd":
            raise ValueError(f"checkpoint holds a {kind} state, optimizer is SGD")
        for index in range(len(optimizer.params)):
            optimizer._velocity[index][:] = state[f"velocity.{index}"]
    else:  # pragma: no cover - _optimizer_state already rejects these
        raise TypeError(f"unsupported optimizer type {type(optimizer).__name__}")


def save_checkpoint(
    path: str | os.PathLike,
    model: Module,
    optimizer: Optimizer | None = None,
    extra: dict[str, float] | None = None,
) -> None:
    """Write model (and optionally optimizer) state to one ``.npz``."""
    payload: dict[str, np.ndarray] = {}
    for name, values in model.state_dict().items():
        payload[f"model/{name}"] = values
    if optimizer is not None:
        for name, values in _optimizer_state(optimizer).items():
            payload[f"optim/{name}"] = values
    for name, value in (extra or {}).items():
        payload[f"extra/{name}"] = np.asarray(value)
    with open(path, "wb") as handle:
        np.savez(handle, **payload)


def load_checkpoint(
    path: str | os.PathLike,
    model: Module,
    optimizer: Optimizer | None = None,
) -> dict[str, float]:
    """Restore model (and optimizer) state; returns the extras dict."""
    with np.load(path, allow_pickle=False) as archive:
        model_state = {
            name[len("model/") :]: archive[name]
            for name in archive.files
            if name.startswith("model/")
        }
        optim_state = {
            name[len("optim/") :]: archive[name]
            for name in archive.files
            if name.startswith("optim/")
        }
        extras = {
            name[len("extra/") :]: float(archive[name])
            for name in archive.files
            if name.startswith("extra/")
        }
    model.load_state_dict(model_state)
    if optimizer is not None:
        if not optim_state:
            raise ValueError(f"{path} contains no optimizer state")
        _restore_optimizer(optimizer, optim_state)
    return extras
