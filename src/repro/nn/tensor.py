"""Reverse-mode automatic differentiation over numpy arrays.

The :class:`Tensor` class records a dynamic computation graph as
operations execute; calling :meth:`Tensor.backward` walks the graph in
reverse topological order and accumulates gradients into every tensor
created with ``requires_grad=True``.

Design notes
------------
* All arithmetic is broadcast-aware: gradients flowing back through a
  broadcast are reduced with :func:`_unbroadcast` so that a parameter of
  shape ``(d,)`` added to a batch of shape ``(b, d)`` receives a
  gradient of shape ``(d,)``.
* A handful of numerically sensitive composites (softmax, log-softmax,
  layer normalization) are implemented as fused primitives in
  :mod:`repro.nn.functional` with analytic backward rules; everything
  else composes the primitives defined here.
* ``float64`` is the default dtype: the library trains small models on
  CPU where float64 costs little and makes finite-difference gradient
  checks tight.  The default is a policy, not a constant — see
  :mod:`repro.nn.precision`.  Float arrays (float32/float64) keep their
  own dtype through every op, so a float32 model propagates float32
  activations end to end; non-float payloads (lists, ints, bools) are
  coerced to the current default, and scalars folded into arithmetic
  adopt the other operand's dtype so a python ``0.5`` never silently
  upcasts a float32 graph.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence, Union

import numpy as np

from repro.nn import precision as _precision
from repro.obs import profiling as _profiling

Arrayish = Union["Tensor", np.ndarray, float, int, list, tuple]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction.

    Used for evaluation loops where gradients are not needed; inside the
    block every operation produces constant tensors, which keeps memory
    flat during full-ranking evaluation.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after a broadcast.

    Summing over the leading axes that were added by broadcasting and
    over any axis that was expanded from size one.
    """
    if grad.shape == shape:
        return grad
    # Remove extra leading dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Collapse broadcast dimensions (size 1 in the original shape).
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: Arrayish, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("expected a raw array-like, got a Tensor")
    return np.asarray(value, dtype=dtype if dtype is not None else _precision.default_dtype())


class Tensor:
    """A numpy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array-like payload.  Float32/float64 arrays are stored as-is;
        anything else (lists, ints, bools) is coerced to the current
        default dtype (:func:`repro.nn.precision.default_dtype`,
        ``float64`` unless opted into float32).
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data: Arrayish,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        data = np.asarray(data)
        if data.dtype not in _precision.SUPPORTED_DTYPES:
            data = data.astype(_precision.default_dtype())
        self.data = data
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._parents = _parents
        self._backward = _backward

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a float."""
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph utilities
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, gradient: np.ndarray | None = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        gradient:
            Seed gradient.  Defaults to ``1.0`` and therefore requires a
            scalar tensor; pass an explicit array for non-scalar roots.
        """
        if gradient is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without a gradient argument requires a scalar "
                    f"tensor, got shape {self.shape}"
                )
            gradient = np.ones_like(self.data)
        gradient = np.asarray(gradient, dtype=self.data.dtype)
        if gradient.shape != self.data.shape:
            raise ValueError(
                f"seed gradient shape {gradient.shape} does not match tensor "
                f"shape {self.data.shape}"
            )

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        # Iterative DFS to tolerate deep graphs (long training loops).
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): gradient}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad:
                node._accumulate(node_grad)
            if node._backward is None:
                continue
            for parent, parent_grad in node._backward(node_grad):
                if parent_grad is None:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + parent_grad
                else:
                    grads[key] = parent_grad

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], Iterable[tuple["Tensor", np.ndarray | None]]],
    ) -> "Tensor":
        """Create an op result, recording the graph only when needed."""
        if _GRAD_ENABLED and any(p.requires_grad or p._parents for p in parents):
            return Tensor(data, _parents=tuple(parents), _backward=backward)
        return Tensor(data)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(value: Arrayish, like: np.ndarray | None = None) -> "Tensor":
        if isinstance(value, Tensor):
            return value
        # Scalars and lists folded into arithmetic adopt the other
        # operand's dtype: under NEP 50 a 0-d float64 array is "strong"
        # and would silently upcast a float32 graph.
        dtype = like.dtype if like is not None else _precision.default_dtype()
        return Tensor(np.asarray(value, dtype=dtype))

    def __add__(self, other: Arrayish) -> "Tensor":
        other = Tensor._coerce(other, like=self.data)
        out = self.data + other.data

        def backward(grad: np.ndarray):
            return (
                (self, _unbroadcast(grad, self.shape)),
                (other, _unbroadcast(grad, other.shape)),
            )

        return Tensor._make(out, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other: Arrayish) -> "Tensor":
        other = Tensor._coerce(other, like=self.data)
        out = self.data - other.data

        def backward(grad: np.ndarray):
            return (
                (self, _unbroadcast(grad, self.shape)),
                (other, _unbroadcast(-grad, other.shape)),
            )

        return Tensor._make(out, (self, other), backward)

    def __rsub__(self, other: Arrayish) -> "Tensor":
        return Tensor._coerce(other, like=self.data) - self

    def __mul__(self, other: Arrayish) -> "Tensor":
        other = Tensor._coerce(other, like=self.data)
        out = self.data * other.data
        self_data, other_data = self.data, other.data

        def backward(grad: np.ndarray):
            return (
                (self, _unbroadcast(grad * other_data, self.shape)),
                (other, _unbroadcast(grad * self_data, other.shape)),
            )

        return Tensor._make(out, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Arrayish) -> "Tensor":
        other = Tensor._coerce(other, like=self.data)
        out = self.data / other.data
        self_data, other_data = self.data, other.data

        def backward(grad: np.ndarray):
            return (
                (self, _unbroadcast(grad / other_data, self.shape)),
                (
                    other,
                    _unbroadcast(-grad * self_data / (other_data**2), other.shape),
                ),
            )

        return Tensor._make(out, (self, other), backward)

    def __rtruediv__(self, other: Arrayish) -> "Tensor":
        return Tensor._coerce(other, like=self.data) / self

    def __neg__(self) -> "Tensor":
        out = -self.data

        def backward(grad: np.ndarray):
            return ((self, -grad),)

        return Tensor._make(out, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        out = self.data**exponent
        self_data = self.data

        def backward(grad: np.ndarray):
            return ((self, grad * exponent * self_data ** (exponent - 1)),)

        return Tensor._make(out, (self,), backward)

    def __matmul__(self, other: Arrayish) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: Arrayish) -> "Tensor":
        """Matrix product supporting batched operands (via ``np.matmul``)."""
        profiler = _profiling.active()
        if profiler is None:
            return self._matmul_impl(other)
        with profiler.scope("tensor.matmul"):
            return self._matmul_impl(other)

    def _matmul_impl(self, other: Arrayish) -> "Tensor":
        other = Tensor._coerce(other, like=self.data)
        out = np.matmul(self.data, other.data)
        self_data, other_data = self.data, other.data

        def backward(grad: np.ndarray):
            if other_data.ndim == 1 and self_data.ndim == 1:
                grad_self = grad * other_data
                grad_other = grad * self_data
            elif other_data.ndim == 1:
                grad_self = np.expand_dims(grad, -1) * other_data
                grad_other = _unbroadcast(
                    (np.expand_dims(grad, -1) * self_data).sum(axis=-2)
                    if self_data.ndim > 2
                    else self_data.T @ grad,
                    other_data.shape,
                )
                grad_self = _unbroadcast(grad_self, self_data.shape)
            elif self_data.ndim == 1:
                grad_self = _unbroadcast(
                    np.matmul(grad, np.swapaxes(other_data, -1, -2)), self_data.shape
                )
                grad_other = np.matmul(
                    np.expand_dims(self_data, -1), np.expand_dims(grad, -2)
                )
                grad_other = _unbroadcast(grad_other, other_data.shape)
            else:
                grad_self = _unbroadcast(
                    np.matmul(grad, np.swapaxes(other_data, -1, -2)), self_data.shape
                )
                grad_other = _unbroadcast(
                    np.matmul(np.swapaxes(self_data, -1, -2), grad), other_data.shape
                )
            return ((self, grad_self), (other, grad_other))

        return Tensor._make(out, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out = np.exp(self.data)

        def backward(grad: np.ndarray):
            return ((self, grad * out),)

        return Tensor._make(out, (self,), backward)

    def log(self) -> "Tensor":
        out = np.log(self.data)
        self_data = self.data

        def backward(grad: np.ndarray):
            return ((self, grad / self_data),)

        return Tensor._make(out, (self,), backward)

    def sqrt(self) -> "Tensor":
        out = np.sqrt(self.data)

        def backward(grad: np.ndarray):
            return ((self, grad / (2.0 * out)),)

        return Tensor._make(out, (self,), backward)

    def tanh(self) -> "Tensor":
        out = np.tanh(self.data)

        def backward(grad: np.ndarray):
            return ((self, grad * (1.0 - out**2)),)

        return Tensor._make(out, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic function.
        out = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, 0, None))),
            np.exp(np.clip(self.data, None, 0))
            / (1.0 + np.exp(np.clip(self.data, None, 0))),
        )

        def backward(grad: np.ndarray):
            return ((self, grad * out * (1.0 - out)),)

        return Tensor._make(out, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = self.data * mask

        def backward(grad: np.ndarray):
            return ((self, grad * mask),)

        return Tensor._make(out, (self,), backward)

    def clip(self, low: float | None, high: float | None) -> "Tensor":
        """Clamp values; gradient is passed through inside the range."""
        out = np.clip(self.data, low, high)
        inside = np.ones_like(self.data, dtype=bool)
        if low is not None:
            inside &= self.data >= low
        if high is not None:
            inside &= self.data <= high

        def backward(grad: np.ndarray):
            return ((self, grad * inside),)

        return Tensor._make(out, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out = self.data.sum(axis=axis, keepdims=keepdims)
        self_shape = self.shape

        def backward(grad: np.ndarray):
            expanded = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(a % len(self_shape) for a in axes):
                    expanded = np.expand_dims(expanded, ax)
            return ((self, np.broadcast_to(expanded, self_shape).copy()),)

        return Tensor._make(np.asarray(out), (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        out = self.data.max(axis=axis, keepdims=keepdims)
        argmax = np.expand_dims(self.data.argmax(axis=axis), axis)
        self_shape = self.shape

        self_dtype = self.data.dtype

        def backward(grad: np.ndarray):
            expanded = grad if keepdims else np.expand_dims(grad, axis)
            full = np.zeros(self_shape, dtype=self_dtype)
            np.put_along_axis(full, argmax, expanded, axis)
            return ((self, full),)

        return Tensor._make(np.asarray(out), (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray):
            return ((self, grad.reshape(original)),)

        return Tensor._make(out, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray):
            return ((self, grad.transpose(inverse)),)

        return Tensor._make(out, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def __getitem__(self, key) -> "Tensor":
        out = self.data[key]
        self_shape = self.shape
        self_dtype = self.data.dtype

        def backward(grad: np.ndarray):
            full = np.zeros(self_shape, dtype=self_dtype)
            np.add.at(full, key, grad)
            return ((self, full),)

        return Tensor._make(np.asarray(out), (self,), backward)

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Gather rows along axis 0 (embedding lookup).

        ``indices`` may have any shape; the result has shape
        ``indices.shape + self.shape[1:]``.  The backward pass
        scatter-adds into the source rows (``np.add.at``), which is the
        behaviour embedding tables need when indices repeat.
        """
        indices = np.asarray(indices)
        out = self.data[indices]
        self_shape = self.shape
        self_dtype = self.data.dtype

        def backward(grad: np.ndarray):
            full = np.zeros(self_shape, dtype=self_dtype)
            np.add.at(full, indices.reshape(-1), grad.reshape(-1, *self_shape[1:]))
            return ((self, full),)

        return Tensor._make(out, (self,), backward)

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Replace entries where ``mask`` is true with ``value``.

        The gradient is zero at masked positions.  ``mask`` broadcasts
        against the tensor's shape (as in attention masking).
        """
        mask = np.broadcast_to(np.asarray(mask, dtype=bool), self.shape)
        out = np.where(mask, value, self.data)

        def backward(grad: np.ndarray):
            return ((self, np.where(mask, 0.0, grad)),)

        return Tensor._make(out, (self,), backward)

    def expand_dims(self, axis: int) -> "Tensor":
        out = np.expand_dims(self.data, axis)

        def backward(grad: np.ndarray):
            return ((self, np.squeeze(grad, axis=axis)),)

        return Tensor._make(out, (self,), backward)

    def squeeze(self, axis: int) -> "Tensor":
        out = np.squeeze(self.data, axis=axis)

        def backward(grad: np.ndarray):
            return ((self, np.expand_dims(grad, axis)),)

        return Tensor._make(out, (self,), backward)


def tensor(data: Arrayish, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [Tensor._coerce(t) for t in tensors]
    out = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray):
        slices = []
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            slices.append((t, grad[tuple(index)]))
        return slices

    return Tensor._make(out, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    tensors = [Tensor._coerce(t) for t in tensors]
    out = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray):
        parts = np.split(grad, len(tensors), axis=axis)
        return [
            (t, np.squeeze(part, axis=axis)) for t, part in zip(tensors, parts)
        ]

    return Tensor._make(out, tuple(tensors), backward)
