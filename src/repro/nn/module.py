"""``Module`` / ``Parameter`` abstractions for building models.

Modeled on the familiar torch API: modules register parameters and
sub-modules automatically via ``__setattr__``, expose ``parameters()``,
``state_dict()`` / ``load_state_dict()``, and a train/eval flag that
layers such as :class:`repro.nn.layers.Dropout` respect.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.nn import precision as _precision
from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is a trainable model parameter."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


#: Registered state-dict upgraders, applied (in registration order) by
#: :meth:`Module.load_state_dict` before key checking.  Each hook takes
#: ``(module, state)`` and returns a (possibly rewritten) state dict;
#: layout changes such as the packed QKV projection register a hook here
#: so legacy checkpoints keep loading (see ``repro.nn.attention``).
STATE_DICT_UPGRADES: list[Callable[["Module", dict], dict]] = []


def register_state_dict_upgrade(hook: Callable[["Module", dict], dict]) -> None:
    """Register a state-dict rewrite applied on every ``load_state_dict``."""
    STATE_DICT_UPGRADES.append(hook)


class Module:
    """Base class for all neural network modules."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Parameter) -> None:
        """Explicitly register a parameter under ``name``."""
        self._parameters[name] = param
        object.__setattr__(self, name, param)

    def add_module(self, name: str, module: "Module") -> None:
        """Explicitly register a sub-module under ``name``."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its children."""
        for __, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Modes
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout)."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a flat ``name -> array`` mapping (copies)."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter values from a flat mapping.

        With ``strict=True`` (default) the key sets must match exactly.
        Shapes must always match.  Values are cast to each parameter's
        own dtype, so a float32 model loads a float64 checkpoint (and
        vice versa) without changing the model's precision; registered
        :data:`STATE_DICT_UPGRADES` hooks run first so legacy layouts
        (e.g. unpacked Q/K/V projections) are rewritten transparently.
        """
        for upgrade in STATE_DICT_UPGRADES:
            state = upgrade(self, state)
        own = dict(self.named_parameters())
        if strict:
            missing = sorted(set(own) - set(state))
            unexpected = sorted(set(state) - set(own))
            if missing or unexpected:
                raise KeyError(
                    f"state dict mismatch: missing={missing}, unexpected={unexpected}"
                )
        for name, values in state.items():
            if name not in own:
                continue
            param = own[name]
            values = np.asarray(values, dtype=param.data.dtype)
            if param.data.shape != values.shape:
                raise ValueError(
                    f"shape mismatch for '{name}': "
                    f"{param.data.shape} vs {values.shape}"
                )
            param.data = values.copy()

    def to_dtype(self, dtype) -> "Module":
        """Cast every parameter to ``dtype`` in place; returns ``self``.

        Models are always *constructed* in float64 (the init draws are
        precision-independent, so a float32 model is exactly the
        float64 init rounded once); opting into float32 is a cast after
        construction — and before the optimizer is created, so Adam's
        ``zeros_like`` buffers inherit the dtype.  A same-dtype cast is
        a no-op.
        """
        dtype = _precision.resolve_dtype(dtype)
        for param in self.parameters():
            if param.data.dtype != dtype:
                param.data = param.data.astype(dtype)
                if param.grad is not None:
                    param.grad = param.grad.astype(dtype)
        return self

    def param_dtype(self) -> np.dtype:
        """The dtype of the module's parameters (first parameter wins)."""
        for param in self.parameters():
            return param.data.dtype
        return _precision.default_dtype()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError
