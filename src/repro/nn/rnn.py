"""Gated recurrent unit layers (for the GRU4Rec baseline).

Gates are fused into a single input-to-hidden and hidden-to-hidden
matmul per step, then sliced, matching the standard GRU formulation:

.. math::

    r_t &= \\sigma(x_t W_{ir} + b_{ir} + h_{t-1} W_{hr} + b_{hr}) \\\\
    z_t &= \\sigma(x_t W_{iz} + b_{iz} + h_{t-1} W_{hz} + b_{hz}) \\\\
    n_t &= \\tanh(x_t W_{in} + b_{in} + r_t (h_{t-1} W_{hn} + b_{hn})) \\\\
    h_t &= (1 - z_t) n_t + z_t h_{t-1}
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, stack


class GRUCell(Module):
    """A single GRU step operating on ``(batch, input_dim)`` inputs."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.weight_ih = Parameter(init.xavier_uniform((input_dim, 3 * hidden_dim), rng))
        self.weight_hh = Parameter(init.xavier_uniform((hidden_dim, 3 * hidden_dim), rng))
        self.bias_ih = Parameter(init.zeros((3 * hidden_dim,)))
        self.bias_hh = Parameter(init.zeros((3 * hidden_dim,)))

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        h = self.hidden_dim
        gates_x = x.matmul(self.weight_ih) + self.bias_ih
        gates_h = hidden.matmul(self.weight_hh) + self.bias_hh
        reset = (gates_x[:, :h] + gates_h[:, :h]).sigmoid()
        update = (gates_x[:, h : 2 * h] + gates_h[:, h : 2 * h]).sigmoid()
        candidate = (gates_x[:, 2 * h :] + reset * gates_h[:, 2 * h :]).tanh()
        return (1.0 - update) * candidate + update * hidden


class GRU(Module):
    """Unidirectional (optionally stacked) GRU over padded sequences.

    Accepts inputs of shape ``(batch, length, input_dim)`` and returns
    the per-step hidden states ``(batch, length, hidden_dim)`` of the
    final layer.  Padding positions can be frozen via ``step_mask`` so
    the hidden state carries over unchanged through padded steps.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        num_layers: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.cells: list[GRUCell] = []
        for i in range(num_layers):
            cell = GRUCell(input_dim if i == 0 else hidden_dim, hidden_dim, rng=rng)
            self.add_module(f"cell{i}", cell)
            self.cells.append(cell)

    def forward(self, x: Tensor, step_mask: np.ndarray | None = None) -> Tensor:
        """Run the GRU over time.

        Parameters
        ----------
        x:
            ``(batch, length, input_dim)`` inputs.
        step_mask:
            Optional ``(batch, length)`` float/bool array; 1 where the
            step is real, 0 where it is padding.  At padding steps the
            hidden state is carried over unchanged.
        """
        batch, length, __ = x.shape
        dtype = x.data.dtype  # keep-mask and state follow the input precision
        layer_input = x
        for cell in self.cells:
            hidden = Tensor(np.zeros((batch, self.hidden_dim), dtype=dtype))
            outputs = []
            for t in range(length):
                step = layer_input[:, t, :]
                new_hidden = cell(step, hidden)
                if step_mask is not None:
                    keep = np.asarray(step_mask, dtype=dtype)[:, t][:, None]
                    new_hidden = new_hidden * Tensor(keep) + hidden * Tensor(1.0 - keep)
                hidden = new_hidden
                outputs.append(hidden)
            layer_input = stack(outputs, axis=1)
        return layer_input
