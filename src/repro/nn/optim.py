"""Optimizers and learning-rate schedules.

The paper optimizes both stages with Adam (lr=0.001, β1=0.9, β2=0.999)
and a linear decay of the learning rate (§4.1.4); :class:`Adam` and
:class:`LinearDecaySchedule` implement exactly that.

Precision: moment/velocity buffers are ``zeros_like`` the parameters,
so they inherit the model's dtype — construct the optimizer *after*
``Module.to_dtype`` (the training loops do), and every update runs
in-place, which keeps float32 state float32 end to end.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class holding a parameter list and the current lr."""

    kind: str = ""  # short tag identifying the update rule ("adam", "sgd")

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Persistence — flat ``name -> array`` mappings, checkpoint-ready
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return the optimizer state as a flat ``name -> array`` dict.

        Contains ``__kind__`` (the update rule tag), ``__lr__``, and
        whatever per-parameter buffers the subclass maintains.
        """
        if not self.kind:
            raise TypeError(
                f"{type(self).__name__} does not define a state_dict kind"
            )
        state: dict[str, np.ndarray] = {
            "__kind__": np.asarray(self.kind),
            "__lr__": np.asarray(self.lr),
        }
        state.update(self._state_buffers())
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`state_dict` (in place)."""
        kind = str(state["__kind__"])
        if kind != self.kind:
            raise ValueError(
                f"checkpoint holds a {kind} state, optimizer is "
                f"{type(self).__name__}"
            )
        self.lr = float(state["__lr__"])
        self._load_state_buffers(state)

    def _state_buffers(self) -> dict[str, np.ndarray]:
        """Per-parameter buffers to persist; subclasses override."""
        return {}

    def _load_state_buffers(self, state: dict[str, np.ndarray]) -> None:
        """Restore the buffers emitted by :meth:`_state_buffers`."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    kind = "sgd"

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad

    def _state_buffers(self) -> dict[str, np.ndarray]:
        return {
            f"velocity.{index}": velocity
            for index, velocity in enumerate(self._velocity)
        }

    def _load_state_buffers(self, state: dict[str, np.ndarray]) -> None:
        for index in range(len(self.params)):
            self._velocity[index][:] = state[f"velocity.{index}"]


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) with bias correction.

    Defaults match the paper: lr=0.001, β1=0.9, β2=0.999.
    """

    kind = "adam"

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._step_count
        bias2 = 1.0 - beta2**self._step_count
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _state_buffers(self) -> dict[str, np.ndarray]:
        buffers: dict[str, np.ndarray] = {"__step__": np.asarray(self._step_count)}
        for index, (m, v) in enumerate(zip(self._m, self._v)):
            buffers[f"m.{index}"] = m
            buffers[f"v.{index}"] = v
        return buffers

    def _load_state_buffers(self, state: dict[str, np.ndarray]) -> None:
        self._step_count = int(state["__step__"])
        for index in range(len(self.params)):
            self._m[index][:] = state[f"m.{index}"]
            self._v[index][:] = state[f"v.{index}"]


class LinearDecaySchedule:
    """Linearly decay the optimizer lr from its initial value.

    After ``total_steps`` calls to :meth:`step` the lr reaches
    ``initial_lr * final_factor`` and stays there.
    """

    def __init__(
        self, optimizer: Optimizer, total_steps: int, final_factor: float = 0.1
    ) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        if not 0.0 <= final_factor <= 1.0:
            raise ValueError("final_factor must be in [0, 1]")
        self.optimizer = optimizer
        self.total_steps = total_steps
        self.final_factor = final_factor
        self.initial_lr = optimizer.lr
        self._step_count = 0

    def step(self) -> None:
        """Advance one step and update the optimizer's lr."""
        self._step_count = min(self._step_count + 1, self.total_steps)
        progress = self._step_count / self.total_steps
        factor = 1.0 - (1.0 - self.final_factor) * progress
        self.optimizer.lr = self.initial_lr * factor

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr

    def state_dict(self) -> dict[str, np.ndarray]:
        """Schedule state needed to resume mid-run lr decay."""
        return {
            "step": np.asarray(self._step_count),
            "initial_lr": np.asarray(self.initial_lr),
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore :meth:`state_dict` output; re-applies the decayed lr."""
        self._step_count = int(state["step"])
        self.initial_lr = float(state["initial_lr"])
        if self._step_count > 0:
            progress = min(self._step_count, self.total_steps) / self.total_steps
            factor = 1.0 - (1.0 - self.final_factor) * progress
            self.optimizer.lr = self.initial_lr * factor


class GradientClipper:
    """Clip the global gradient norm of a parameter list."""

    def __init__(self, params: Iterable[Parameter], max_norm: float) -> None:
        if max_norm <= 0:
            raise ValueError("max_norm must be positive")
        self.params = list(params)
        self.max_norm = max_norm

    def clip(self) -> float:
        """Scale gradients in place; returns the pre-clip global norm."""
        total = 0.0
        for param in self.params:
            if param.grad is not None:
                total += float((param.grad**2).sum())
        norm = float(np.sqrt(total))
        if norm > self.max_norm and norm > 0:
            scale = self.max_norm / norm
            for param in self.params:
                if param.grad is not None:
                    param.grad = param.grad * scale
        return norm
