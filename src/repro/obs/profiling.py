"""Opt-in scoped profiling for the hot numerical paths in ``repro.nn``.

Off by default and built for a near-zero disabled cost: instrumented
call sites do::

    from repro.obs.profiling import profile_scope

    with profile_scope("nn.attention"):
        ...

When profiling is disabled (the default), :func:`profile_scope`
returns one shared, pre-allocated null context — the overhead is a
single function call plus an empty ``with`` per site, which the
``benchmarks/test_obs_overhead.py`` gate bounds at <3% of a tiny
training run.  When enabled, each scope's wall time lands in a
histogram (``profile/<name>``) and a call counter on the active
:class:`Profiler`'s registry.

Enable either programmatically (:func:`enable` / :func:`profiled`), by
the ``repro train --profile`` CLI flag, or by exporting
``REPRO_PROFILE=1`` before the process starts.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs.registry import MetricsRegistry

#: Environment variable that turns profiling on at import time.
PROFILE_ENV_VAR = "REPRO_PROFILE"

_TRUTHY = {"1", "true", "yes", "on"}


class _NullScope:
    """A reusable, stateless no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class Profiler:
    """Aggregates scoped wall times into a metrics registry.

    ``profile/<scope>`` histograms hold per-call seconds;
    ``profile_calls/<scope>`` counters hold call counts.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    @contextmanager
    def scope(self, name: str) -> Iterator[None]:
        """Record the body's wall time under ``profile/<name>``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.registry.observe(f"profile/{name}", time.perf_counter() - started)
            self.registry.increment(f"profile_calls/{name}")

    def summary(self) -> dict:
        """Per-scope totals: calls, total/mean milliseconds."""
        out: dict[str, dict[str, float]] = {}
        for name, hist in self.registry.histograms.items():
            if not name.startswith("profile/"):
                continue
            scope = name[len("profile/") :]
            out[scope] = {
                "calls": hist.count,
                "total_ms": hist.total_seconds * 1e3,
                "mean_ms": hist.mean_seconds * 1e3,
                "max_ms": hist.max_seconds * 1e3,
            }
        return out


_ACTIVE: Profiler | None = None


def active() -> Profiler | None:
    """The currently enabled profiler, or ``None`` (the default)."""
    return _ACTIVE


def enabled() -> bool:
    """Whether any profiler is currently active."""
    return _ACTIVE is not None


def enable(profiler: Profiler | None = None) -> Profiler:
    """Install ``profiler`` (a fresh one by default) as the active one."""
    global _ACTIVE
    _ACTIVE = profiler if profiler is not None else Profiler()
    return _ACTIVE


def disable() -> None:
    """Turn profiling off; :func:`profile_scope` returns to no-ops."""
    global _ACTIVE
    _ACTIVE = None


def profile_scope(name: str):
    """The hot-path hook: a timing scope, or a shared no-op when off."""
    profiler = _ACTIVE
    if profiler is None:
        return _NULL_SCOPE
    return profiler.scope(name)


@contextmanager
def profiled(profiler: Profiler | None = None) -> Iterator[Profiler]:
    """Enable profiling for a ``with`` block, restoring the prior state."""
    global _ACTIVE
    previous = _ACTIVE
    installed = enable(profiler)
    try:
        yield installed
    finally:
        _ACTIVE = previous


def _enable_from_env() -> None:
    if os.environ.get(PROFILE_ENV_VAR, "").strip().lower() in _TRUTHY:
        enable()


_enable_from_env()
