"""In-process metrics primitives shared by training, eval and serving.

One :class:`MetricsRegistry` per run (or per engine) holds three kinds
of instruments, all allocation-cheap and dependency-free:

* :class:`Counter` — monotone integer counts (requests, batches,
  sequences encoded, rollbacks).
* :class:`Gauge` — a last-written float (current learning rate, queue
  depth).
* :class:`Histogram` — streaming distribution of float observations
  (seconds, by convention) with exact count/mean/max and reservoir-
  sampled percentiles, bounded at :data:`MAX_SAMPLES` entries so
  long-running processes stay O(1) in memory.

:meth:`MetricsRegistry.timer` wraps a ``with`` block's wall time into a
histogram; :meth:`MetricsRegistry.snapshot` exports everything as one
JSON-friendly dict.  ``repro.serve.metrics.ServingMetrics`` is a thin
facade over this module, so serving and training export one schema —
see ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import math
import time
import zlib
from contextlib import contextmanager
from typing import Iterator

import numpy as np

#: Per-histogram sample cap; beyond it the reservoir keeps a uniform
#: random subsample so long-running processes stay O(1) in memory.
MAX_SAMPLES = 65536

#: Percentiles exported by :meth:`Histogram.summary`.
PERCENTILES = (50.0, 90.0, 99.0)


class Counter:
    """A monotone integer count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def increment(self, by: int = 1) -> None:
        """Add ``by`` (must be non-negative) to the count."""
        by = int(by)
        if by < 0:
            raise ValueError(f"counters only go up, got increment {by}")
        self.value += by


class Gauge:
    """A float that tracks the last written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = float(value)


class Histogram:
    """Streaming recorder of float observations with percentiles.

    Stores raw samples (seconds, by convention) up to ``max_samples``,
    then reservoir-samples (Vitter's algorithm R) so percentiles stay
    representative of the whole run, not just its head.  Counts,
    totals and the max are always exact.  Every summary statistic is
    guaranteed NaN-free: an empty histogram reports zeros, and a
    single-sample reservoir reports that sample for every percentile.
    """

    def __init__(self, max_samples: int = MAX_SAMPLES, seed: int = 0) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        self.max_samples = max_samples
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0
        self._samples: list[float] = []
        self._rng = np.random.default_rng(seed)

    def record(self, seconds: float) -> None:
        """Add one observation (in seconds)."""
        seconds = float(seconds)
        if math.isnan(seconds):
            return  # a NaN sample must never poison the percentiles
        self.count += 1
        self.total_seconds += seconds
        self.max_seconds = max(self.max_seconds, seconds)
        if len(self._samples) < self.max_samples:
            self._samples.append(seconds)
        else:  # reservoir sampling, Vitter's algorithm R
            slot = int(self._rng.integers(0, self.count))
            if slot < self.max_samples:
                self._samples[slot] = seconds

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    # ------------------------------------------------------------------
    # Cross-process state transfer
    # ------------------------------------------------------------------
    def state(self, sample_cap: int | None = None) -> dict:
        """Raw, mergeable state (exact aggregates + reservoir samples).

        Serving workers ship this across process boundaries so the
        frontend can merge per-worker histograms into one ``/metrics``
        view.  ``sample_cap`` bounds the shipped reservoir (a seeded
        deterministic subsample) to keep the payload small; counts,
        totals and the max stay exact regardless.
        """
        samples = self._samples
        if sample_cap is not None and len(samples) > sample_cap:
            if sample_cap < 1:
                raise ValueError(f"sample_cap must be positive, got {sample_cap}")
            chosen = np.sort(
                self._rng.choice(len(samples), size=sample_cap, replace=False)
            )
            samples = [samples[i] for i in chosen]
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "max_seconds": self.max_seconds,
            "samples": list(samples),
        }

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's :meth:`state` into this one.

        Counts, totals and the max combine exactly; reservoir samples
        are appended (reservoir-replaced past ``max_samples`` through
        this histogram's seeded RNG), so the merged percentiles are a
        deterministic approximation of the combined distribution.
        """
        other_count = int(state["count"])
        if other_count < 0:
            raise ValueError(f"merged count must be non-negative, got {other_count}")
        self.count += other_count
        self.total_seconds += float(state["total_seconds"])
        self.max_seconds = max(self.max_seconds, float(state["max_seconds"]))
        for sample in state["samples"]:
            sample = float(sample)
            if len(self._samples) < self.max_samples:
                self._samples.append(sample)
            else:
                slot = int(self._rng.integers(0, len(self._samples) * 2))
                if slot < self.max_samples:
                    self._samples[slot] = sample

    def percentile(self, q: float) -> float:
        """q-th percentile of the recorded values, in seconds.

        Returns 0.0 on an empty histogram and the sole sample on a
        single-entry reservoir — never NaN.
        """
        if not self._samples:
            return 0.0
        if len(self._samples) == 1:
            return self._samples[0]
        value = float(np.percentile(np.asarray(self._samples), q))
        return 0.0 if math.isnan(value) else value

    def summary(self) -> dict[str, float]:
        """JSON-friendly summary (milliseconds for human-scale fields)."""
        out = {
            "count": self.count,
            "mean_ms": self.mean_seconds * 1e3,
            "max_ms": self.max_seconds * 1e3,
        }
        for q in PERCENTILES:
            out[f"p{q:g}_ms"] = self.percentile(q) * 1e3
        return out


class MetricsRegistry:
    """Named counters, gauges and histograms behind one object.

    Instruments are created on first use, so call sites never need
    registration boilerplate::

        registry.increment("batches")
        registry.gauge("lr").set(1e-3)
        with registry.timer("epoch_seconds"):
            run_epoch()

    ``seed`` deterministically derives every histogram's reservoir RNG
    from the instrument name, so percentile exports (``/metrics`` p99)
    are reproducible run to run — and distinct per worker when sharded
    serving passes each worker its own registry seed.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def _histogram_seed(self, name: str) -> int:
        """A stable per-instrument reservoir seed (registry seed + name)."""
        return zlib.crc32(f"{self.seed}:{name}".encode())

    # ------------------------------------------------------------------
    # Instrument access (created on first use)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter for ``name``, created at zero on first use."""
        if name not in self.counters:
            self.counters[name] = Counter()
        return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        """The gauge for ``name``, created at zero on first use."""
        if name not in self.gauges:
            self.gauges[name] = Gauge()
        return self.gauges[name]

    def histogram(self, name: str) -> Histogram:
        """The histogram for ``name``, created empty on first use."""
        if name not in self.histograms:
            self.histograms[name] = Histogram(seed=self._histogram_seed(name))
        return self.histograms[name]

    # ------------------------------------------------------------------
    # Recording shortcuts
    # ------------------------------------------------------------------
    def increment(self, name: str, by: int = 1) -> None:
        """Bump counter ``name``."""
        self.counter(name).increment(by)

    def observe(self, name: str, seconds: float) -> None:
        """Record one observation into histogram ``name``."""
        self.histogram(name).record(seconds)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Record the body's wall time into histogram ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.histogram(name).record(time.perf_counter() - started)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def counter_values(self) -> dict[str, int]:
        """Plain ``name -> count`` mapping of every counter."""
        return {name: counter.value for name, counter in self.counters.items()}

    def snapshot(self) -> dict:
        """The full registry state as one JSON-friendly dict."""
        return {
            "counters": self.counter_values(),
            "gauges": {name: gauge.value for name, gauge in self.gauges.items()},
            "histograms": {
                name: hist.summary() for name, hist in self.histograms.items()
            },
        }

    # ------------------------------------------------------------------
    # Cross-process merging (sharded serving)
    # ------------------------------------------------------------------
    def state(self, sample_cap: int | None = None) -> dict:
        """Raw, mergeable registry state (see :meth:`Histogram.state`).

        Unlike :meth:`snapshot` this is loss-aware transfer format, not
        presentation: histograms carry their reservoir samples so a
        receiving registry can recompute percentiles over the union.
        """
        return {
            "counters": self.counter_values(),
            "gauges": {name: gauge.value for name, gauge in self.gauges.items()},
            "histograms": {
                name: hist.state(sample_cap=sample_cap)
                for name, hist in self.histograms.items()
            },
        }

    def merge_state(self, state: dict) -> None:
        """Fold one :meth:`state` payload into this registry.

        Counters add, gauges take the max (both sides report the same
        monotone quantities — ``model_version``, ``breaker_state`` —
        where max is the conservative view), histograms merge their
        reservoirs.  Merging the same cumulative payload twice double
        counts; merge into a scratch registry per export instead (see
        :meth:`from_states`).
        """
        for name, value in state.get("counters", {}).items():
            self.counter(name).increment(value)
        for name, value in state.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.set(max(gauge.value, float(value)))
        for name, hist_state in state.get("histograms", {}).items():
            self.histogram(name).merge_state(hist_state)

    @classmethod
    def from_states(cls, states: list[dict], seed: int = 0) -> "MetricsRegistry":
        """A fresh registry holding the merge of ``states``.

        The sharded serving frontend calls this on every ``/metrics``
        export with its own state plus each worker's, so repeated
        exports never accumulate into a live registry.
        """
        merged = cls(seed=seed)
        for state in states:
            merged.merge_state(state)
        return merged
