"""Structured JSON-lines event stream for a run (``obs.jsonl``).

Every run directory gets one append-only ``obs.jsonl``; each line is a
self-describing JSON object::

    {"v": 1, "seq": 12, "ts": 1754448000.123456, "event": "joint_epoch",
     "epoch": 3, "loss": 1.234, ...}

* ``v`` — schema version (:data:`SCHEMA_VERSION`).
* ``seq`` — per-sink monotone sequence number, so readers can detect
  truncation and order events even when timestamps collide.
* ``ts`` — UNIX timestamp (wall clock; the only non-deterministic
  field emitted by the instrumented loops — everything else is
  bit-reproducible under a fixed seed, which the determinism e2e test
  asserts).
* ``event`` — event name; remaining keys are event-specific payload.

Lines are flushed as written, so a crashed run keeps everything up to
its last completed event.  :class:`RunObserver` bundles a sink with a
:class:`~repro.obs.registry.MetricsRegistry` and is the single object
the training loops, the evaluator and the fault-tolerant runtime
thread their telemetry through.  Schema reference:
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import math
import os
import time
from typing import IO, Any

import numpy as np

from repro.obs.registry import MetricsRegistry

SCHEMA_VERSION = 1

#: Default event-stream filename inside a run directory.
EVENTS_FILENAME = "obs.jsonl"


def jsonable(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays into plain JSON types.

    Non-finite floats map to ``None`` so the stream stays valid strict
    JSON (a diverged loss must not produce an unparseable line).
    """
    if isinstance(value, (float, np.floating)):
        value = float(value)
        return value if math.isfinite(value) else None
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return [jsonable(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    return value


class EventSink:
    """Append-only JSON-lines writer with run metadata.

    Parameters
    ----------
    directory:
        Run directory; created if missing.  The stream is
        ``<directory>/obs.jsonl``.
    meta:
        Optional run metadata (dataset, mode, seed, argv, ...) emitted
        as the payload of an initial ``run_start`` event.
    filename:
        Override the stream filename (tests).
    """

    def __init__(
        self,
        directory: str,
        meta: dict | None = None,
        filename: str = EVENTS_FILENAME,
    ) -> None:
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.path = os.path.join(directory, filename)
        self._seq = 0
        self._file: IO[str] | None = open(self.path, "a", encoding="utf-8")
        self.emit("run_start", meta=dict(meta or {}))

    @property
    def closed(self) -> bool:
        return self._file is None

    def emit(self, event: str, **fields: Any) -> dict:
        """Write one event line (flushed immediately); returns the record."""
        if self._file is None:
            raise ValueError(f"event sink for {self.path} is closed")
        record: dict[str, Any] = {
            "v": SCHEMA_VERSION,
            "seq": self._seq,
            "ts": round(time.time(), 6),
            "event": str(event),
        }
        for key, value in fields.items():
            record[key] = jsonable(value)
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._file.flush()
        self._seq += 1
        return record

    def close(self) -> None:
        """Close the stream; further :meth:`emit` calls raise."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_events(path: str) -> list[dict]:
    """Parse an ``obs.jsonl`` (or a run directory containing one).

    Blank lines are skipped; a torn final line (crashed writer) is
    ignored rather than failing the whole read.
    """
    if os.path.isdir(path):
        path = os.path.join(path, EVENTS_FILENAME)
    events: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn tail of a crashed run
    return events


class RunObserver:
    """One handle for everything a run records: events + metrics.

    The training loops, the evaluator and the runtime all accept an
    optional ``obs`` argument; passing the same :class:`RunObserver`
    everywhere yields one coherent ``obs.jsonl`` plus one aggregated
    :class:`~repro.obs.registry.MetricsRegistry`.  ``sink`` may be
    ``None`` for metrics-only observation (events become no-ops).
    """

    def __init__(
        self,
        sink: EventSink | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.sink = sink
        self.registry = registry if registry is not None else MetricsRegistry()

    @classmethod
    def to_directory(cls, directory: str, meta: dict | None = None) -> "RunObserver":
        """An observer writing ``obs.jsonl`` under ``directory``."""
        return cls(sink=EventSink(directory, meta=meta))

    def event(self, name: str, **fields: Any) -> None:
        """Emit one structured event (no-op without a sink)."""
        if self.sink is not None:
            self.sink.emit(name, **fields)

    def increment(self, name: str, by: int = 1) -> None:
        """Bump a registry counter."""
        self.registry.increment(name, by)

    def observe(self, name: str, seconds: float) -> None:
        """Record into a registry histogram."""
        self.registry.observe(name, seconds)

    def timer(self, name: str):
        """Time a ``with`` block into a registry histogram."""
        return self.registry.timer(name)

    def close(self) -> None:
        """Emit a final ``metrics_snapshot`` + ``run_end`` and close."""
        if self.sink is not None and not self.sink.closed:
            self.event("metrics_snapshot", registry=self.registry.snapshot())
            self.event("run_end")
            self.sink.close()

    def __enter__(self) -> "RunObserver":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
