"""``repro.obs`` — the unified observability layer.

One measurement substrate for the whole system:

* :mod:`repro.obs.registry` — in-process counters, gauges and
  reservoir-percentile histograms with timer context managers.
* :mod:`repro.obs.events` — the per-run ``obs.jsonl`` structured
  event stream plus :class:`RunObserver`, the handle the training
  loops, evaluator and runtime thread their telemetry through.
* :mod:`repro.obs.profiling` — opt-in scoped timers around the hot
  ``repro.nn`` paths (off by default, near-zero disabled cost).
* :mod:`repro.obs.stats` — the ``python -m repro stats`` summarizer.

Serving metrics (``repro.serve.metrics.ServingMetrics``) are a facade
over the same registry, so training and serving export one schema.
See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.events import (
    EVENTS_FILENAME,
    SCHEMA_VERSION,
    EventSink,
    RunObserver,
    read_events,
)
from repro.obs.profiling import (
    PROFILE_ENV_VAR,
    Profiler,
    profile_scope,
    profiled,
)
from repro.obs.registry import (
    MAX_SAMPLES,
    PERCENTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.stats import format_table, summarize_events, summarize_run

__all__ = [
    "Counter",
    "EVENTS_FILENAME",
    "EventSink",
    "Gauge",
    "Histogram",
    "MAX_SAMPLES",
    "MetricsRegistry",
    "PERCENTILES",
    "PROFILE_ENV_VAR",
    "Profiler",
    "RunObserver",
    "SCHEMA_VERSION",
    "format_table",
    "profile_scope",
    "profiled",
    "read_events",
    "summarize_events",
    "summarize_run",
]
