"""Summarize an ``obs.jsonl`` event stream into terminal tables.

Backs the ``python -m repro stats <run-dir>`` subcommand: reads the
events written by the instrumented training/eval loops and the
fault-tolerant runtime (schema in ``docs/OBSERVABILITY.md``) and
renders a compact plain-text report — run metadata, per-epoch loss
tables per training stage, evaluation metrics, checkpoint/rollback
accounting, and the final registry snapshot when present.
"""

from __future__ import annotations

import os

from repro.obs.events import EVENTS_FILENAME, read_events

#: Events carrying one row per training epoch, keyed by event name.
EPOCH_EVENTS = ("pretrain_epoch", "train_epoch", "joint_epoch")


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Fixed-width plain-text table (no external dependencies)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: list[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    rule = "  ".join("-" * width for width in widths)
    return "\n".join([line(headers), rule] + [line(row) for row in rows])


def _fmt(value, digits: int = 4) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def _epoch_table(events: list[dict], name: str) -> str | None:
    rows_src = [e for e in events if e.get("event") == name]
    if not rows_src:
        return None
    # Columns: union of the numeric payload fields, in a stable order.
    preferred = [
        "epoch", "loss", "rec_loss", "cl_loss", "accuracy",
        "grad_norm", "items_per_sec", "epoch_seconds", "lr",
    ]
    present = [c for c in preferred if any(c in e for e in rows_src)]
    rows = []
    for event in rows_src:
        rows.append([
            _fmt(event.get(c), digits=2 if c == "items_per_sec" else 4)
            for c in present
        ])
    stage = rows_src[0].get("stage", name.replace("_epoch", ""))
    return f"[{stage}] {len(rows_src)} epoch(s)\n" + format_table(present, rows)


def _eval_table(events: list[dict]) -> str | None:
    evals = [e for e in events if e.get("event") == "eval"]
    if not evals:
        return None
    blocks = []
    for i, event in enumerate(evals):
        metrics = event.get("metrics", {})
        headers = ["split", "users", "candidates", "seconds"] + sorted(metrics)
        row = [
            str(event.get("split", "-")),
            _fmt(event.get("num_users")),
            _fmt(event.get("candidates_scored")),
            _fmt(event.get("eval_seconds")),
        ] + [_fmt(metrics[k]) for k in sorted(metrics)]
        blocks.append(format_table(headers, [row]))
    return f"[eval] {len(evals)} run(s)\n" + "\n".join(blocks)


def _runtime_lines(events: list[dict]) -> list[str]:
    lines = []
    saves = [e for e in events if e.get("event") == "checkpoint_saved"]
    if saves:
        total = sum(float(e.get("seconds", 0.0)) for e in saves)
        lines.append(
            f"checkpoints: {len(saves)} write(s), {total:.3f}s total "
            f"({total / len(saves):.3f}s mean)"
        )
    failures = [e for e in events if e.get("event") == "checkpoint_write_failed"]
    if failures:
        lines.append(f"checkpoint write failures: {len(failures)}")
    rollbacks = [e for e in events if e.get("event") == "divergence_rollback"]
    if rollbacks:
        lines.append(f"divergence rollbacks: {len(rollbacks)}")
    resumes = [e for e in events if e.get("event") == "resume"]
    for event in resumes:
        lines.append(f"resumed from epoch {event.get('epoch')}")
    return lines


def _snapshot_lines(events: list[dict]) -> list[str]:
    snapshots = [e for e in events if e.get("event") == "metrics_snapshot"]
    if not snapshots:
        return []
    registry = snapshots[-1].get("registry", {})
    lines = []
    counters = registry.get("counters", {})
    if counters:
        lines.append("counters: " + ", ".join(
            f"{name}={value}" for name, value in sorted(counters.items())
        ))
    histograms = registry.get("histograms", {})
    if histograms:
        headers = ["histogram", "count", "mean_ms", "p50_ms", "p99_ms", "max_ms"]
        rows = [
            [
                name,
                _fmt(summary.get("count")),
                _fmt(summary.get("mean_ms"), 3),
                _fmt(summary.get("p50_ms"), 3),
                _fmt(summary.get("p99_ms"), 3),
                _fmt(summary.get("max_ms"), 3),
            ]
            for name, summary in sorted(histograms.items())
        ]
        lines.append(format_table(headers, rows))
    return lines


def _parallel_table(events: list[dict]) -> str | None:
    """Per-worker totals from the ``parallel_worker`` epoch events."""
    rows_src = [e for e in events if e.get("event") == "parallel_worker"]
    if not rows_src:
        return None
    workers: dict[int, dict[str, float]] = {}
    for event in rows_src:
        stats = workers.setdefault(
            int(event.get("worker", 0)),
            {"epochs": 0, "steps": 0, "sequences": 0, "compute_seconds": 0.0},
        )
        stats["epochs"] += 1
        stats["steps"] += int(event.get("steps", 0))
        stats["sequences"] += int(event.get("sequences", 0))
        stats["compute_seconds"] += float(event.get("compute_seconds", 0.0))
    headers = ["worker", "epochs", "steps", "sequences", "compute_s", "items/s"]
    rows = []
    for worker in sorted(workers):
        stats = workers[worker]
        rate = (
            stats["sequences"] / stats["compute_seconds"]
            if stats["compute_seconds"] > 0
            else None
        )
        rows.append([
            str(worker),
            str(int(stats["epochs"])),
            str(int(stats["steps"])),
            str(int(stats["sequences"])),
            _fmt(stats["compute_seconds"], 3),
            _fmt(rate, 1),
        ])
    return (
        f"[parallel] {len(workers)} worker(s)\n" + format_table(headers, rows)
    )


def summarize_events(events: list[dict]) -> str:
    """Render the full plain-text report for a parsed event list."""
    sections: list[str] = []

    starts = [e for e in events if e.get("event") == "run_start"]
    header = f"{len(events)} event(s), {len(starts)} run segment(s)"
    meta = starts[-1].get("meta", {}) if starts else {}
    if meta:
        header += "\n" + ", ".join(f"{k}={v}" for k, v in sorted(meta.items()))
    sections.append(header)

    for name in EPOCH_EVENTS:
        table = _epoch_table(events, name)
        if table:
            sections.append(table)

    parallel_table = _parallel_table(events)
    if parallel_table:
        sections.append(parallel_table)

    eval_table = _eval_table(events)
    if eval_table:
        sections.append(eval_table)

    runtime_lines = _runtime_lines(events)
    if runtime_lines:
        sections.append("[runtime]\n" + "\n".join(runtime_lines))

    profile = [e for e in events if e.get("event") == "profile_summary"]
    if profile:
        scopes = profile[-1].get("scopes", {})
        headers = ["scope", "calls", "total_ms", "mean_ms"]
        rows = [
            [
                name,
                _fmt(s.get("calls")),
                _fmt(s.get("total_ms"), 2),
                _fmt(s.get("mean_ms"), 4),
            ]
            for name, s in sorted(scopes.items())
        ]
        sections.append("[profile]\n" + format_table(headers, rows))

    snapshot_lines = _snapshot_lines(events)
    if snapshot_lines:
        sections.append("[metrics]\n" + "\n".join(snapshot_lines))

    return "\n\n".join(sections)


def summarize_run(run_dir: str) -> str:
    """Read ``<run_dir>/obs.jsonl`` (or a direct file path) and render.

    Raises ``FileNotFoundError`` when no event stream exists.
    """
    path = run_dir
    if os.path.isdir(run_dir):
        path = os.path.join(run_dir, EVENTS_FILENAME)
    if not os.path.exists(path):
        raise FileNotFoundError(f"no {EVENTS_FILENAME} found at {path}")
    return summarize_events(read_events(path))
