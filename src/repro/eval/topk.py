"""Partial-sort top-k selection shared by evaluation and serving.

Full ranking (``np.argsort``) is O(n log n) per user over the whole
catalogue; a serving path that only ever returns the best ``k`` items
can do O(n + k log k) instead via ``np.argpartition``.  This module is
the single implementation both sides use, so the engine's output is
guaranteed to match the evaluation protocol.

Tie-breaking is fully deterministic: equal scores rank by ascending
item index, so the result is always bit-identical to
``np.argsort(-scores, kind="stable")[:k]`` — including when ties
straddle the k-th position.  ``argpartition`` makes an arbitrary choice
among boundary ties, so after partitioning we detect rows whose
threshold value also occurs outside the selected set and repair them to
keep the smallest tied indices.  That total-order guarantee is what
lets exact-vs-rerank retrieval comparisons assert *equality* instead of
set overlap.
"""

from __future__ import annotations

import numpy as np


def top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest entries, sorted by descending score.

    Parameters
    ----------
    scores:
        1-D ``(n,)`` or 2-D ``(batch, n)`` array; rows are ranked
        independently along the last axis.
    k:
        Number of indices to return; clamped to ``n`` when larger.

    Returns
    -------
    ``(k,)`` or ``(batch, k)`` int64 indices, best first.  Equal scores
    order by ascending index (stable), matching a full stable sort of
    ``-scores`` even when ties cross the k-th position.
    """
    scores = np.asarray(scores)
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    if scores.ndim not in (1, 2):
        raise ValueError(f"scores must be 1-D or 2-D, got shape {scores.shape}")
    n = scores.shape[-1]
    k = min(k, n)
    if k >= n:
        return np.argsort(-scores, axis=-1, kind="stable").astype(np.int64)
    partition = np.argpartition(-scores, k - 1, axis=-1)[..., :k]
    # Canonicalize the (arbitrary) partition order so equal scores
    # resolve by ascending original index under the stable sort below.
    partition = np.sort(partition, axis=-1)

    # Boundary-tie repair: when the k-th value also occurs outside the
    # selected set, argpartition's pick among the tied items is
    # unspecified — replace it with the smallest tied indices so the
    # result matches the stable full sort.  Detection is vectorized
    # (two equality reductions); the repair itself only runs on the
    # offending rows, which are rare for real-valued scores.
    scores_2d = scores[np.newaxis] if scores.ndim == 1 else scores
    part_2d = partition[np.newaxis] if scores.ndim == 1 else partition
    top_scores = np.take_along_axis(scores_2d, part_2d, axis=-1)
    threshold = top_scores.min(axis=-1)
    ties_total = (scores_2d == threshold[:, None]).sum(axis=-1)
    ties_in_top = (top_scores == threshold[:, None]).sum(axis=-1)
    for row in np.flatnonzero(ties_total > ties_in_top):
        row_scores = scores_2d[row]
        keep = part_2d[row][row_scores[part_2d[row]] > threshold[row]]
        tied = np.flatnonzero(row_scores == threshold[row])[: k - keep.size]
        part_2d[row] = np.sort(np.concatenate([keep, tied]))
        top_scores[row] = row_scores[part_2d[row]]

    order = np.argsort(-top_scores, axis=-1, kind="stable")
    result = np.take_along_axis(part_2d, order, axis=-1).astype(np.int64)
    return result[0] if scores.ndim == 1 else result


def top_k_table(scores: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """``(indices, values)`` of the top-k entries per row, best first."""
    scores = np.asarray(scores)
    indices = top_k_indices(scores, k)
    if scores.ndim == 1:
        return indices, scores[indices]
    return indices, np.take_along_axis(scores, indices, axis=-1)
