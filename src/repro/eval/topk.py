"""Partial-sort top-k selection shared by evaluation and serving.

Full ranking (``np.argsort``) is O(n log n) per user over the whole
catalogue; a serving path that only ever returns the best ``k`` items
can do O(n + k log k) instead via ``np.argpartition``.  This module is
the single implementation both sides use, so the engine's output is
guaranteed to match the evaluation protocol.

Tie-breaking is deterministic: equal scores rank by ascending item
index (i.e. the result matches ``np.argsort(-scores, kind="stable")``).
One caveat inherited from ``argpartition``: when ties straddle the k-th
position, *which* of the tied items enters the top-k is the partition's
choice — identical scores at the boundary may select different (equally
valid) items than a full sort.  On ties-free inputs the result is
bit-identical to a full stable sort.
"""

from __future__ import annotations

import numpy as np


def top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest entries, sorted by descending score.

    Parameters
    ----------
    scores:
        1-D ``(n,)`` or 2-D ``(batch, n)`` array; rows are ranked
        independently along the last axis.
    k:
        Number of indices to return; clamped to ``n`` when larger.

    Returns
    -------
    ``(k,)`` or ``(batch, k)`` int64 indices, best first.  Equal scores
    order by ascending index (stable).
    """
    scores = np.asarray(scores)
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    if scores.ndim not in (1, 2):
        raise ValueError(f"scores must be 1-D or 2-D, got shape {scores.shape}")
    n = scores.shape[-1]
    k = min(k, n)
    if k >= n:
        return np.argsort(-scores, axis=-1, kind="stable").astype(np.int64)
    partition = np.argpartition(-scores, k - 1, axis=-1)[..., :k]
    # Canonicalize the (arbitrary) partition order so equal scores
    # resolve by ascending original index under the stable sort below.
    partition = np.sort(partition, axis=-1)
    top_scores = np.take_along_axis(scores, partition, axis=-1)
    order = np.argsort(-top_scores, axis=-1, kind="stable")
    return np.take_along_axis(partition, order, axis=-1).astype(np.int64)


def top_k_table(scores: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """``(indices, values)`` of the top-k entries per row, best first."""
    scores = np.asarray(scores)
    indices = top_k_indices(scores, k)
    if scores.ndim == 1:
        return indices, scores[indices]
    return indices, np.take_along_axis(scores, indices, axis=-1)
