"""Evaluation: full-ranking HR@k / NDCG@k under leave-one-out splits,
plus beyond-accuracy list diagnostics (coverage, popularity bias, Gini)."""

from repro.eval.diagnostics import (
    catalog_coverage,
    exposure_gini,
    popularity_bias,
    recommendation_diagnostics,
    top_k_lists,
)
from repro.eval.evaluator import (
    EvaluationResult,
    Evaluator,
    candidate_scores,
    evaluate_model,
)
from repro.eval.metrics import hit_ratio, mrr, ndcg, rank_of_target, ranking_metrics
from repro.eval.temporal import evaluate_temporal
from repro.eval.topk import top_k_indices, top_k_table

__all__ = [
    "EvaluationResult",
    "Evaluator",
    "candidate_scores",
    "catalog_coverage",
    "evaluate_model",
    "evaluate_temporal",
    "exposure_gini",
    "hit_ratio",
    "mrr",
    "ndcg",
    "popularity_bias",
    "rank_of_target",
    "ranking_metrics",
    "recommendation_diagnostics",
    "top_k_indices",
    "top_k_lists",
    "top_k_table",
]
