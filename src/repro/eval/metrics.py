"""Ranking metrics (paper §4.1.2).

The paper evaluates on the *whole* item set without negative sampling
(citing Krichene & Rendle's warning about sampled metrics), reporting
Hit Ratio and NDCG at k ∈ {5, 10, 20}.  With a single relevant item
per user, ``NDCG@k`` reduces to ``1 / log2(rank + 1)`` when the target
ranks within the top *k* and 0 otherwise.
"""

from __future__ import annotations

import numpy as np

DEFAULT_KS = (5, 10, 20)


def rank_of_target(scores: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """1-based rank of each row's target item under ``scores``.

    ``scores`` has shape ``(batch, num_candidates)``; ``targets`` holds
    the column index of the relevant item per row.  Ties are broken
    pessimistically (items scoring equal to the target are counted as
    ranked above it), which penalizes degenerate constant scorers.
    """
    scores = np.asarray(scores, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.int64)
    rows = np.arange(len(targets))
    target_scores = scores[rows, targets][:, None]
    better_or_equal = (scores >= target_scores).sum(axis=1)
    return better_or_equal  # includes the target itself -> 1-based


def hit_ratio(ranks: np.ndarray, k: int) -> float:
    """Fraction of users whose target ranks within the top ``k``."""
    ranks = np.asarray(ranks)
    if len(ranks) == 0:
        return 0.0
    return float((ranks <= k).mean())


def ndcg(ranks: np.ndarray, k: int) -> float:
    """Mean NDCG@k with one relevant item per user."""
    ranks = np.asarray(ranks, dtype=np.float64)
    if len(ranks) == 0:
        return 0.0
    gains = np.where(ranks <= k, 1.0 / np.log2(ranks + 1.0), 0.0)
    return float(gains.mean())


def mrr(ranks: np.ndarray) -> float:
    """Mean reciprocal rank (extra metric, not in the paper's tables)."""
    ranks = np.asarray(ranks, dtype=np.float64)
    if len(ranks) == 0:
        return 0.0
    return float((1.0 / ranks).mean())


def ranking_metrics(
    ranks: np.ndarray, ks: tuple[int, ...] = DEFAULT_KS
) -> dict[str, float]:
    """HR@k and NDCG@k for every ``k`` plus MRR, as a flat dict."""
    out: dict[str, float] = {}
    for k in ks:
        out[f"HR@{k}"] = hit_ratio(ranks, k)
        out[f"NDCG@{k}"] = ndcg(ranks, k)
    out["MRR"] = mrr(ranks)
    return out
