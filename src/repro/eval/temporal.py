"""Evaluation under the global temporal-split protocol (extension).

Complements the paper's leave-one-out evaluator: given a log split at
global time cutoffs (:func:`repro.data.splits.temporal_split`), each
post-cutoff user contributes one next-item event — their pre-cutoff
history and their first post-cutoff item.  The model scores the full
vocabulary from the raw history (``score_sequences``); items in the
history are masked as in the leave-one-out protocol.
"""

from __future__ import annotations

import numpy as np

from repro.data.log import InteractionLog
from repro.data.splits import next_item_events
from repro.eval.evaluator import EvaluationResult
from repro.eval.metrics import DEFAULT_KS, rank_of_target, ranking_metrics


def evaluate_temporal(
    model,
    history: InteractionLog,
    future: InteractionLog,
    num_items: int,
    ks: tuple[int, ...] = DEFAULT_KS,
    batch_size: int = 256,
    max_events: int | None = None,
) -> EvaluationResult:
    """Full-ranking HR/NDCG on temporal next-item events.

    ``history``/``future`` must already use the model's item id space
    (ids ``1..num_items``); build them by splitting the *re-indexed*
    training log, or re-index before splitting.  The model must expose
    ``score_sequences(sequences, num_items)``.
    """
    events = next_item_events(history, future)
    if max_events is not None:
        events = events[:max_events]
    if not events:
        raise ValueError("no evaluable temporal events (all users cold?)")

    all_ranks: list[np.ndarray] = []
    for start in range(0, len(events), batch_size):
        chunk = events[start : start + batch_size]
        sequences = [items for __, items, __ in chunk]
        targets = np.asarray([target for __, __, target in chunk])
        scores = np.array(
            model.score_sequences(sequences, num_items), dtype=np.float64
        )
        if scores.shape != (len(chunk), num_items + 1):
            raise ValueError(
                f"score_sequences returned {scores.shape}, expected "
                f"({len(chunk)}, {num_items + 1})"
            )
        scores[:, 0] = -np.inf
        rows = np.arange(len(chunk))
        target_scores = scores[rows, targets].copy()
        for row, (__, items, __t) in enumerate(chunk):
            scores[row, np.unique(items)] = -np.inf
        scores[rows, targets] = target_scores
        all_ranks.append(rank_of_target(scores, targets))

    ranks = np.concatenate(all_ranks)
    return EvaluationResult(
        metrics=ranking_metrics(ranks, ks), ranks=ranks, num_users=len(events)
    )
