"""Beyond-accuracy diagnostics for recommendation lists.

Accuracy metrics (HR/NDCG) say nothing about *what* a recommender
shows.  These diagnostics quantify two classic failure modes of
popularity-skewed implicit feedback:

* **catalog coverage@k** — the fraction of the catalogue that appears
  in at least one user's top-k list (low = the model only ever
  recommends blockbusters).
* **popularity bias@k** — the mean training popularity of recommended
  items, normalized by the catalogue mean (1.0 = popularity-neutral,
  ≫1 = blockbuster-heavy).
* **intra-list Gini@k** — concentration of recommendation exposure
  across items (0 = perfectly even exposure, 1 = all exposure on one
  item).
"""

from __future__ import annotations

import numpy as np

from repro.data.preprocessing import SequenceDataset
from repro.eval.evaluator import candidate_scores
from repro.eval.topk import top_k_indices


def top_k_lists(
    model,
    dataset: SequenceDataset,
    users: np.ndarray,
    k: int = 10,
    split: str = "test",
    batch_size: int = 256,
) -> np.ndarray:
    """Top-k recommended item ids per user, shape ``(len(users), k)``.

    Seen items and the padding column are excluded, mirroring the
    evaluation protocol.
    """
    users = np.asarray(users)
    lists = np.zeros((len(users), k), dtype=np.int64)
    for start in range(0, len(users), batch_size):
        batch = users[start : start + batch_size]
        scores = np.array(
            candidate_scores(model, dataset, batch, split=split), dtype=np.float64
        )
        scores[:, 0] = -np.inf
        for row, user in enumerate(batch):
            scores[row, dataset.seen_items(int(user))] = -np.inf
        lists[start : start + len(batch)] = top_k_indices(scores, k)
    return lists


def catalog_coverage(lists: np.ndarray, num_items: int) -> float:
    """Fraction of the catalogue appearing in at least one top-k list."""
    if num_items <= 0:
        raise ValueError("num_items must be positive")
    recommended = np.unique(lists)
    recommended = recommended[recommended > 0]
    return len(recommended) / num_items


def popularity_bias(
    lists: np.ndarray, dataset: SequenceDataset
) -> float:
    """Mean training popularity of recommended items / catalogue mean.

    1.0 means recommendations are popularity-neutral; higher values
    mean the model over-recommends popular items.
    """
    counts = np.zeros(dataset.num_items + 1, dtype=np.float64)
    for sequence in dataset.train_sequences:
        np.add.at(counts, sequence, 1.0)
    catalogue_mean = counts[1:].mean()
    if catalogue_mean == 0:
        raise ValueError("dataset has no training interactions")
    return float(counts[lists].mean() / catalogue_mean)


def exposure_gini(lists: np.ndarray, num_items: int) -> float:
    """Gini coefficient of item exposure across all top-k lists."""
    exposure = np.zeros(num_items + 1, dtype=np.float64)
    np.add.at(exposure, lists.reshape(-1), 1.0)
    exposure = np.sort(exposure[1:])
    total = exposure.sum()
    if total == 0:
        return 0.0
    n = len(exposure)
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * exposure).sum()) / (n * total) - (n + 1) / n)


def recommendation_diagnostics(
    model,
    dataset: SequenceDataset,
    k: int = 10,
    max_users: int | None = None,
    split: str = "test",
) -> dict[str, float]:
    """All list-quality diagnostics for one model, as a flat dict."""
    users = dataset.evaluation_users(split)
    if max_users is not None:
        users = users[:max_users]
    lists = top_k_lists(model, dataset, users, k=k, split=split)
    return {
        f"coverage@{k}": catalog_coverage(lists, dataset.num_items),
        f"popularity_bias@{k}": popularity_bias(lists, dataset),
        f"gini@{k}": exposure_gini(lists, dataset.num_items),
    }
