"""Leave-one-out full-ranking evaluation loop.

For each evaluation user the model scores the entire item vocabulary;
items the user has already interacted with are removed from the
candidate set (paper: "rank all the items that the user has not
interacted with"), then the held-out target's rank yields HR/NDCG.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.data.preprocessing import SequenceDataset
from repro.eval.metrics import DEFAULT_KS, rank_of_target, ranking_metrics
from repro.nn.tensor import no_grad

_NEG_INF = -np.inf


def candidate_scores(
    model,
    dataset: SequenceDataset,
    users: np.ndarray,
    split: str = "test",
    items: np.ndarray | None = None,
    index=None,
) -> np.ndarray:
    """Score ``items`` (``None`` = full catalogue) through a model.

    Dispatches to the candidate-scoring entry point
    (``score_items(dataset, users, items=None, split=...)``) and falls
    back to the legacy full-matrix ``score_users`` for duck-typed
    scorers that predate the redesign.  Scoring always runs under
    ``no_grad()`` — every in-repo scorer already disables the graph
    itself, but duck-typed scorers get the same guarantee here so an
    evaluation pass can never retain autograd state.

    With ``index`` (a built :class:`repro.retrieval.ItemIndex`) the
    user histories are encoded with ``model.encode_sequences`` and
    scored through :meth:`~repro.retrieval.ItemIndex.score` instead —
    exact (and bit-identical to ``score_items``) for ``ExactIndex``,
    approximate for quantized indexes, which is how the metric cost of
    compression is measured under the standard protocol.
    """
    with no_grad():
        if index is not None:
            if not hasattr(model, "encode_sequences"):
                raise TypeError(
                    f"{type(model).__name__} exposes no encode_sequences; "
                    f"index-backed evaluation needs the representation API"
                )
            sequences = [
                dataset.full_sequence(int(user), split=split) for user in users
            ]
            queries = np.asarray(model.encode_sequences(sequences))
            scores = index.score(queries)
            if items is None:
                return scores
            return scores[:, np.asarray(items, dtype=np.int64)]
        scorer = getattr(model, "score_items", None)
        if scorer is not None:
            return np.asarray(scorer(dataset, users, items=items, split=split))
        full = np.asarray(model.score_users(dataset, users, split=split))
        if items is None:
            return full
        return full[:, np.asarray(items, dtype=np.int64)]


@dataclass
class EvaluationResult:
    """Metrics plus the raw per-user ranks for deeper analysis."""

    metrics: dict[str, float]
    ranks: np.ndarray = field(repr=False, default_factory=lambda: np.array([]))
    num_users: int = 0

    def __getitem__(self, key: str) -> float:
        return self.metrics[key]


class Evaluator:
    """Evaluate any model exposing ``score_items`` on a dataset split.

    The model contract is::

        score_items(dataset, users, items=None, split) -> np.ndarray
        # (len(users), num_items + 1) when items is None

    where column ``i`` is the score of item id ``i`` (column 0, the
    padding id, is ignored).  Scorers that only implement the legacy
    ``score_users(dataset, users, split)`` full-matrix entry point are
    still accepted via :func:`candidate_scores`.

    Passing ``index`` (a built :class:`repro.retrieval.ItemIndex` over
    the model's item matrix) routes candidate scoring through the
    retrieval protocol instead: bit-identical metrics with
    ``ExactIndex``, and a direct measurement of what int8/PQ
    compression costs in HR/NDCG with the quantized indexes
    (see docs/RETRIEVAL.md).
    """

    def __init__(
        self,
        dataset: SequenceDataset,
        split: str = "test",
        ks: tuple[int, ...] = DEFAULT_KS,
        batch_size: int = 256,
        index=None,
    ) -> None:
        if split not in ("valid", "test"):
            raise ValueError(f"split must be 'valid' or 'test', got {split!r}")
        if index is not None and index.num_rows != dataset.num_items + 1:
            raise ValueError(
                f"index covers {index.num_rows} rows but the dataset has "
                f"{dataset.num_items} items (+1 padding)"
            )
        self.dataset = dataset
        self.split = split
        self.ks = ks
        self.batch_size = batch_size
        self.index = index
        self._users = dataset.evaluation_users(split)

    def evaluate(self, model, max_users: int | None = None, obs=None) -> EvaluationResult:
        """Run the full-ranking protocol and return metrics.

        ``obs`` (a :class:`repro.obs.RunObserver`) records per-batch
        scoring latency into the ``eval.score_batch_seconds`` histogram
        and emits one ``eval`` event with the resulting metrics, the
        user/candidate counts, and the scoring-vs-ranking time split.
        """
        eval_started = time.perf_counter()
        scoring_seconds = 0.0
        candidates_scored = 0
        users = self._users if max_users is None else self._users[:max_users]
        targets = (
            self.dataset.test_targets
            if self.split == "test"
            else self.dataset.valid_targets
        )
        all_ranks: list[np.ndarray] = []
        for start in range(0, len(users), self.batch_size):
            batch_users = users[start : start + self.batch_size]
            score_started = time.perf_counter()
            scores = np.array(
                candidate_scores(
                    model,
                    self.dataset,
                    batch_users,
                    split=self.split,
                    index=self.index,
                ),
                dtype=np.float64,
                copy=True,
            )
            batch_seconds = time.perf_counter() - score_started
            scoring_seconds += batch_seconds
            candidates_scored += scores.size
            if obs is not None:
                obs.observe("eval.score_batch_seconds", batch_seconds)
            if scores.shape != (len(batch_users), self.dataset.num_items + 1):
                raise ValueError(
                    f"scoring returned shape {scores.shape}, expected "
                    f"({len(batch_users)}, {self.dataset.num_items + 1})"
                )
            scores[:, 0] = _NEG_INF  # padding id is never a candidate
            batch_targets = np.asarray([targets[u] for u in batch_users])
            rows = np.arange(len(batch_users))
            target_scores = scores[rows, batch_targets].copy()
            for row, user in enumerate(batch_users):
                if self.split == "test":
                    # The validation item is part of the history now.
                    seen = self.dataset.seen_items(int(user))
                else:
                    seen = np.unique(self.dataset.train_sequences[int(user)])
                scores[row, seen] = _NEG_INF
            # The target must stay scoreable even if it repeats history.
            scores[rows, batch_targets] = target_scores
            all_ranks.append(rank_of_target(scores, batch_targets))
        ranks = np.concatenate(all_ranks) if all_ranks else np.array([])
        metrics = ranking_metrics(ranks, self.ks)
        if obs is not None:
            eval_seconds = time.perf_counter() - eval_started
            obs.observe("eval.seconds", eval_seconds)
            obs.increment("eval_runs")
            obs.increment("eval_users", len(users))
            obs.increment("eval_candidates_scored", candidates_scored)
            obs.event(
                "eval",
                split=self.split,
                num_users=len(users),
                candidates_scored=candidates_scored,
                scoring_seconds=scoring_seconds,
                ranking_seconds=eval_seconds - scoring_seconds,
                eval_seconds=eval_seconds,
                metrics=metrics,
            )
        return EvaluationResult(
            metrics=metrics,
            ranks=ranks,
            num_users=len(users),
        )


def evaluate_model(
    model,
    dataset: SequenceDataset,
    split: str = "test",
    ks: tuple[int, ...] = DEFAULT_KS,
    max_users: int | None = None,
) -> EvaluationResult:
    """One-shot convenience wrapper around :class:`Evaluator`."""
    return Evaluator(dataset, split=split, ks=ks).evaluate(model, max_users=max_users)
