"""Compressed item-matrix representations: int8 scalar + product codes.

The IVF index scores shortlisted candidates against a *compressed*
matrix before exact reranking; this module holds the two compression
schemes, each with a strict encode/decode round-trip contract that the
property tests pin down:

* :class:`Int8Quantizer` — symmetric per-dimension scalar quantization
  to int8 (4x / 8x smaller than float32 / float64).  Round-trip error
  is bounded by half a quantization step per dimension:
  ``|decode(encode(x)) - x| <= scale / 2`` elementwise.
* :class:`ProductQuantizer` — classic PQ (Jégou et al., TPAMI 2011):
  the vector is split into ``m`` subspaces, each encoded as the id of
  its nearest codeword from a 256-entry k-means codebook (1 byte per
  subspace).  The invariant is *optimality of the assignment*: the
  reconstruction of every subvector is at least as close as any other
  codeword in that codebook.

Both expose the same small surface: ``fit(matrix)``, ``encode``,
``decode``, ``scores(query, codes)`` (inner-product scoring against
compressed rows, via a lookup table for PQ), and ``state()`` /
``from_state`` for the artifact round-trip.
"""

from __future__ import annotations

import numpy as np

from repro.retrieval.kmeans import assign_chunked, kmeans

__all__ = ["Int8Quantizer", "ProductQuantizer"]


class Int8Quantizer:
    """Symmetric per-dimension int8 scalar quantization.

    ``scale[d] = max(|x[:, d]|) / 127`` (1 where the column is all
    zero), ``code = round(x / scale)`` clipped to ``[-127, 127]``.
    """

    def __init__(self, scale: np.ndarray | None = None) -> None:
        self.scale = scale

    def fit(self, matrix: np.ndarray) -> "Int8Quantizer":
        matrix = np.asarray(matrix, dtype=np.float64)
        peak = np.abs(matrix).max(axis=0)
        scale = peak / 127.0
        scale[scale == 0.0] = 1.0
        self.scale = scale
        return self

    def encode(self, matrix: np.ndarray) -> np.ndarray:
        """``(n, d)`` float → ``(n, d)`` int8 codes."""
        codes = np.rint(np.asarray(matrix, dtype=np.float64) / self.scale)
        return np.clip(codes, -127, 127).astype(np.int8)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """``(n, d)`` int8 codes → float64 reconstruction."""
        return codes.astype(np.float64) * self.scale

    def scores(self, query: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Approximate inner products of ``query`` with coded rows.

        ``sum_d q_d * scale_d * code_d`` — the per-dimension scale
        folds into the query once, so scoring ``C`` candidates costs
        one ``(C, d) @ (d,)`` product over the int8 codes.
        """
        return codes @ (np.asarray(query, dtype=np.float64) * self.scale)

    @property
    def bytes_per_row(self) -> int:
        return int(self.scale.shape[0])

    def state(self) -> dict[str, np.ndarray]:
        return {"int8_scale": np.asarray(self.scale, dtype=np.float64)}

    @classmethod
    def from_state(cls, state: dict[str, np.ndarray]) -> "Int8Quantizer":
        return cls(scale=np.asarray(state["int8_scale"], dtype=np.float64))


class ProductQuantizer:
    """Product quantization with ``m`` subspaces x 256-entry codebooks.

    ``d`` must be divisible by ``m``; each subvector of width ``d / m``
    is replaced by one byte (the id of its nearest codeword), so a row
    costs ``m`` bytes instead of ``8 d`` — a 64x compression at
    ``d = 64, m = 8`` over float64.
    """

    #: Codewords per subspace codebook (one uint8 code).
    CODEBOOK_SIZE = 256

    def __init__(
        self,
        m: int = 8,
        iters: int = 10,
        seed: int = 0,
        train_sample: int = 65536,
        codebooks: np.ndarray | None = None,
    ) -> None:
        if m < 1:
            raise ValueError(f"m must be positive, got {m}")
        self.m = int(m)
        self.iters = int(iters)
        self.seed = int(seed)
        self.train_sample = int(train_sample)
        #: ``(m, 256, d // m)`` float64 codebooks once fitted.
        self.codebooks = codebooks

    def _split(self, matrix: np.ndarray) -> np.ndarray:
        matrix = np.asarray(matrix, dtype=np.float64)
        n, d = matrix.shape
        if d % self.m != 0:
            raise ValueError(
                f"embedding dim {d} is not divisible by m={self.m} subspaces"
            )
        return matrix.reshape(n, self.m, d // self.m)

    def fit(self, matrix: np.ndarray) -> "ProductQuantizer":
        subvectors = self._split(matrix)
        ds = subvectors.shape[2]
        codebooks = np.zeros((self.m, self.CODEBOOK_SIZE, ds), dtype=np.float64)
        for sub in range(self.m):
            result = kmeans(
                subvectors[:, sub, :],
                self.CODEBOOK_SIZE,
                iters=self.iters,
                seed=self.seed + sub,  # decorrelate subspace inits
                sample=self.train_sample,
            )
            # Fewer distinct points than codewords: kmeans clamps k;
            # pad by repeating the first centroid so codes stay uint8
            # addressable without a ragged structure.
            fitted = result.centroids
            codebooks[sub, : fitted.shape[0]] = fitted
            if fitted.shape[0] < self.CODEBOOK_SIZE:
                codebooks[sub, fitted.shape[0] :] = fitted[0]
        self.codebooks = codebooks
        return self

    def encode(self, matrix: np.ndarray) -> np.ndarray:
        """``(n, d)`` float → ``(n, m)`` uint8 codes (nearest codeword)."""
        subvectors = self._split(matrix)
        n = subvectors.shape[0]
        codes = np.empty((n, self.m), dtype=np.uint8)
        for sub in range(self.m):
            assignments, __ = assign_chunked(
                subvectors[:, sub, :], self.codebooks[sub]
            )
            codes[:, sub] = assignments.astype(np.uint8)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """``(n, m)`` uint8 codes → ``(n, d)`` float64 reconstruction."""
        codes = np.asarray(codes)
        parts = [
            self.codebooks[sub][codes[:, sub].astype(np.int64)]
            for sub in range(self.m)
        ]
        return np.concatenate(parts, axis=1)

    def lookup_table(self, query: np.ndarray) -> np.ndarray:
        """``(m, 256)`` inner products of query subvectors x codewords.

        Asymmetric distance computation (ADC): with the table built
        once per query, scoring a coded row is ``m`` table lookups and
        adds — independent of ``d``.
        """
        query = np.asarray(query, dtype=np.float64).reshape(self.m, -1)
        return np.einsum("mkd,md->mk", self.codebooks, query)

    def scores(self, query: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Approximate inner products via :meth:`lookup_table` gathers.

        The per-subspace tables are flattened so the whole batch is one
        fancy-index into a ``(m * 256,)`` vector plus a row sum — no
        per-subspace Python loop on the serving hot path.
        """
        table = self.lookup_table(query)
        codes = np.asarray(codes)
        offsets = np.arange(self.m, dtype=np.int64) * self.CODEBOOK_SIZE
        flat = codes.astype(np.int64, copy=False) + offsets
        return table.ravel()[flat].sum(axis=1)

    @property
    def bytes_per_row(self) -> int:
        return self.m

    def state(self) -> dict[str, np.ndarray]:
        return {
            "pq_codebooks": np.asarray(self.codebooks, dtype=np.float64),
            "pq_meta": np.asarray(
                [self.m, self.iters, self.seed, self.train_sample],
                dtype=np.int64,
            ),
        }

    @classmethod
    def from_state(cls, state: dict[str, np.ndarray]) -> "ProductQuantizer":
        m, iters, seed, train_sample = (
            int(v) for v in np.asarray(state["pq_meta"], dtype=np.int64)
        )
        return cls(
            m=m,
            iters=iters,
            seed=seed,
            train_sample=train_sample,
            codebooks=np.asarray(state["pq_codebooks"], dtype=np.float64),
        )
