"""Index artifacts: one self-describing ``.npz`` per built index.

Layout::

    __meta__      json: {"format_version", "kind", "params", "checksum"}
    matrix        the full-precision item matrix (exact rerank + verify)
    <kind arrays> centroids / inverted lists / codes / quantizer state

``repro index`` writes these offline; ``repro serve --index-path``
loads one and the engine verifies its ``checksum`` against the matrix
the live model produces, so a stale artifact can never silently serve
a different embedding space (see
:class:`~repro.retrieval.base.IndexMismatchError`).  Loads are
``allow_pickle=False`` — artifacts hold arrays and JSON only.
"""

from __future__ import annotations

import json
import os
import zipfile

import numpy as np

from repro.retrieval.base import (
    INDEX_KINDS,
    IndexBuildError,
    ItemIndex,
    matrix_checksum,
)

__all__ = ["FORMAT_VERSION", "load_index", "save_index"]

FORMAT_VERSION = 1


def save_index(index: ItemIndex, path: str | os.PathLike) -> str:
    """Persist ``index`` (built) to ``path``; returns the path written."""
    index._require_built()
    path = os.fspath(path)
    meta = {
        "format_version": FORMAT_VERSION,
        "kind": index.kind,
        "params": index._artifact_params(),
        "checksum": index.checksum,
        "num_rows": index.num_rows,
        "dim": index.dim,
        "dtype": str(index.matrix.dtype),
    }
    arrays = dict(index._artifact_arrays())
    reserved = {"__meta__", "matrix"} & set(arrays)
    if reserved:
        raise IndexBuildError(f"artifact arrays shadow reserved names: {reserved}")
    # Write via a temp file + rename so a crash mid-write never leaves
    # a torn artifact where a loader might find it.
    tmp = f"{path}.tmp-{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            np.savez(
                handle,
                __meta__=np.array(json.dumps(meta, sort_keys=True)),
                matrix=index.matrix,
                **arrays,
            )
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return path


def load_index(path: str | os.PathLike) -> ItemIndex:
    """Load an artifact written by :func:`save_index`.

    The stored checksum is re-verified against the loaded matrix, so a
    corrupted artifact fails loudly instead of serving garbage.
    """
    path = os.fspath(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            payload = {name: archive[name] for name in archive.files}
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as error:
        raise IndexBuildError(f"{path}: not a readable index artifact: {error}") from error
    if "__meta__" not in payload or "matrix" not in payload:
        raise IndexBuildError(f"{path}: missing index metadata or matrix")
    try:
        meta = json.loads(str(payload.pop("__meta__")))
    except json.JSONDecodeError as error:
        raise IndexBuildError(f"{path}: corrupt index metadata: {error}") from error
    version = meta.get("format_version")
    if version != FORMAT_VERSION:
        raise IndexBuildError(
            f"{path}: unsupported index format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    kind = meta.get("kind")
    if kind not in INDEX_KINDS:
        raise IndexBuildError(
            f"{path}: unknown index kind {kind!r}; "
            f"registered: {sorted(INDEX_KINDS)}"
        )
    matrix = payload.pop("matrix")
    if matrix_checksum(matrix) != meta.get("checksum"):
        raise IndexBuildError(
            f"{path}: item-matrix checksum mismatch — the artifact is "
            f"corrupt or was tampered with; rebuild it with 'repro index'"
        )
    params = {
        key: value for key, value in meta.get("params", {}).items()
        if value is not None
    }
    index = INDEX_KINDS[kind].from_kind(kind, **params)
    index._set_matrix(matrix)
    index._restore_arrays(payload)
    return index
