"""Deterministic, chunked Lloyd k-means for retrieval structures.

Both the IVF coarse quantizer and the product-quantizer codebooks are
plain k-means problems; this module is the single seeded implementation
they share.  Design constraints, in order:

* **Determinism** — same ``(points, k, seed)`` always yields the same
  centroids: seeded k-means++ init, fixed iteration count, ties in
  assignment resolved by ``argmin`` (lowest centroid id wins).
* **Bounded memory** — the ``(n, k)`` distance matrix is never fully
  materialized; assignment streams over row chunks so a 200k x 1024
  problem stays tens of MB instead of gigabytes.
* **No dead centroids** — an empty cluster is reseeded to the point
  currently farthest from its centroid, so every inverted list stays
  non-empty on reasonable data.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KMeansResult", "assign_chunked", "kmeans"]

#: Rows per chunk in the streaming assignment (bounds peak memory).
_CHUNK = 8192


def assign_chunked(
    points: np.ndarray, centroids: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Nearest-centroid assignment by squared L2, streamed over chunks.

    Returns ``(assignments, distances)`` where ``distances[i]`` is the
    squared L2 distance of point ``i`` to its assigned centroid.
    """
    n = points.shape[0]
    assignments = np.empty(n, dtype=np.int64)
    distances = np.empty(n, dtype=np.float64)
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2; the ||x||^2 term is
    # constant per row so the argmin only needs the last two.
    c_norms = np.einsum("kd,kd->k", centroids, centroids)
    for start in range(0, n, _CHUNK):
        chunk = points[start : start + _CHUNK]
        scores = chunk @ centroids.T
        scores *= -2.0
        scores += c_norms
        idx = np.argmin(scores, axis=1)
        assignments[start : start + _CHUNK] = idx
        x_norms = np.einsum("nd,nd->n", chunk, chunk)
        rows = np.arange(len(chunk))
        distances[start : start + _CHUNK] = np.maximum(
            scores[rows, idx] + x_norms, 0.0
        )
    return assignments, distances


class KMeansResult:
    """Fitted centroids plus the final assignment of the training points."""

    def __init__(
        self,
        centroids: np.ndarray,
        assignments: np.ndarray,
        inertia: float,
        iterations: int,
    ) -> None:
        self.centroids = centroids
        self.assignments = assignments
        self.inertia = inertia
        self.iterations = iterations


def _kmeanspp_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Seeded k-means++ seeding (D^2 sampling)."""
    n = points.shape[0]
    centroids = np.empty((k, points.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centroids[0] = points[first]
    closest = np.sum((points - centroids[0]) ** 2, axis=1)
    for j in range(1, k):
        total = closest.sum()
        if total <= 0.0:
            # All remaining points coincide with a centroid; any pick
            # works — take a deterministic spread.
            centroids[j] = points[int(rng.integers(n))]
        else:
            draw = rng.random() * total
            pick = int(np.searchsorted(np.cumsum(closest), draw))
            pick = min(pick, n - 1)
            centroids[j] = points[pick]
        distance = np.sum((points - centroids[j]) ** 2, axis=1)
        np.minimum(closest, distance, out=closest)
    return centroids


def kmeans(
    points: np.ndarray,
    k: int,
    iters: int = 10,
    seed: int = 0,
    sample: int | None = None,
) -> KMeansResult:
    """Lloyd k-means with seeded k-means++ init.

    Parameters
    ----------
    points:
        ``(n, d)`` training vectors (any float dtype; math in float64).
    k:
        Number of centroids; clamped to ``n``.
    iters:
        Fixed Lloyd iteration count (determinism beats adaptive stop).
    seed:
        RNG seed for init and empty-cluster reseeding.
    sample:
        Optionally fit on a seeded subsample of at most this many
        points (codebook training on huge catalogues); the returned
        assignments still cover **all** points.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be (n, d), got shape {points.shape}")
    n = points.shape[0]
    if n == 0:
        raise ValueError("cannot run k-means on zero points")
    k = max(1, min(int(k), n))
    rng = np.random.default_rng(seed)

    train = points
    if sample is not None and n > sample:
        train = points[rng.choice(n, size=sample, replace=False)]

    centroids = _kmeanspp_init(train, k, rng)
    for _ in range(max(1, int(iters))):
        assignments, distances = assign_chunked(train, centroids)
        counts = np.bincount(assignments, minlength=k)
        sums = np.zeros_like(centroids)
        np.add.at(sums, assignments, train)
        occupied = counts > 0
        centroids[occupied] = sums[occupied] / counts[occupied, None]
        empty = np.flatnonzero(~occupied)
        if empty.size:
            # Reseed each empty centroid to the currently worst-fit
            # point (deterministic: ranked by distance, ties by index).
            worst = np.argsort(-distances, kind="stable")[: empty.size]
            centroids[empty] = train[worst]

    assignments, distances = assign_chunked(points, centroids)
    return KMeansResult(
        centroids=centroids,
        assignments=assignments,
        inertia=float(distances.sum()),
        iterations=max(1, int(iters)),
    )
