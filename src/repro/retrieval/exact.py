"""The exact dense index: today's serving path behind the protocol.

``ExactIndex`` is deliberately boring — one matmul against the full
item matrix, float64 score rows, padding + exclusions masked to
``-inf``, then the shared :func:`repro.eval.topk.top_k_indices`
partial sort.  It reproduces the pre-retrieval engine **bit for bit**
(the operations and their order are identical), which is why it is the
default: ``repro serve --index exact`` serves the same lists the
engine always served, and every ANN index is measured against it.
"""

from __future__ import annotations

import numpy as np

from repro.eval.topk import top_k_indices
from repro.retrieval.base import (
    ItemIndex,
    SearchResult,
    SearchStats,
    register_index,
)

__all__ = ["ExactIndex"]

_NEG_INF = -np.inf


def apply_exclusions(
    scores: np.ndarray, exclude: list[np.ndarray | None] | None
) -> None:
    """Mask padding (column 0) and per-row excluded ids in place.

    Exactly the masking the engine historically performed: one fancy
    assignment over concatenated (row, col) exclusion pairs.
    """
    scores[:, 0] = _NEG_INF
    if exclude is None:
        return
    row_idx = np.concatenate(
        [
            np.full(len(ids), row)
            for row, ids in enumerate(exclude)
            if ids is not None
        ]
        or [np.empty(0, dtype=np.int64)]
    )
    col_idx = np.concatenate(
        [ids for ids in exclude if ids is not None]
        or [np.empty(0, dtype=np.int64)]
    )
    scores[row_idx.astype(np.int64), col_idx.astype(np.int64)] = _NEG_INF


@register_index
class ExactIndex(ItemIndex):
    """Dense matmul + partial-sort top-k over the full catalogue."""

    kinds = ("exact",)

    def build(self, item_matrix: np.ndarray) -> "ExactIndex":
        self._set_matrix(item_matrix)
        return self

    def rebuild(self, item_matrix: np.ndarray) -> "ExactIndex":
        return ExactIndex().build(item_matrix)

    def score(self, queries: np.ndarray) -> np.ndarray:
        queries = self._validate_queries(queries, k=1)
        # Matmul in the native dtype, then the float64 cast — the same
        # order of operations the engine used, so results are
        # bit-identical in float32 serving mode too.
        return np.array(queries @ self._matrix.T, dtype=np.float64, copy=True)

    def search(
        self,
        queries: np.ndarray,
        k: int,
        exclude: list[np.ndarray | None] | None = None,
    ) -> SearchResult:
        queries = self._validate_queries(queries, k)
        scores = self.score(queries)
        apply_exclusions(scores, exclude)
        k = min(k, scores.shape[1])
        top = top_k_indices(scores, k)
        return SearchResult(
            items=top,
            scores=np.take_along_axis(scores, top, axis=-1),
            stats=SearchStats(candidates_scored=int(scores.size)),
        )

    def stats(self) -> dict:
        payload = super().stats()
        payload["exact"] = True
        return payload

    def _artifact_arrays(self) -> dict[str, np.ndarray]:
        return {}

    def _artifact_params(self) -> dict:
        return {}
