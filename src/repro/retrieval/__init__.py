"""Sub-linear top-k retrieval over item embeddings.

One protocol (:class:`~repro.retrieval.base.ItemIndex`), three
implementations::

    from repro.retrieval import make_index

    index = make_index("ivf_pq", nprobe=8, rerank=200)
    index.build(model.item_embedding_matrix(dataset.num_items))
    result = index.search(queries, k=10)

* ``exact`` — the dense matmul path, bit-identical to the historical
  engine (and the recall reference for everything else).
* ``ivf`` — k-means inverted lists + int8 scalar-quantized candidate
  scoring + exact top-R rerank.
* ``ivf_pq`` — same routing with product-quantization (ADC) scoring.

``nprobe`` (cells visited) and ``rerank`` (exactly rescored shortlist)
are the exactness knobs; artifacts round-trip through ``save``/``load``
(see :mod:`repro.retrieval.io`) and are built offline with
``python -m repro index``.  Full picture: ``docs/RETRIEVAL.md``.
"""

from repro.retrieval.base import (
    INDEX_KINDS,
    IndexBuildError,
    IndexMismatchError,
    ItemIndex,
    SearchResult,
    SearchStats,
    make_index,
    matrix_checksum,
    register_index,
)
from repro.retrieval.exact import ExactIndex
from repro.retrieval.io import load_index, save_index
from repro.retrieval.ivf import IVFIndex
from repro.retrieval.kmeans import KMeansResult, kmeans
from repro.retrieval.quantize import Int8Quantizer, ProductQuantizer

__all__ = [
    "ExactIndex",
    "INDEX_KINDS",
    "IVFIndex",
    "IndexBuildError",
    "IndexMismatchError",
    "Int8Quantizer",
    "ItemIndex",
    "KMeansResult",
    "ProductQuantizer",
    "SearchResult",
    "SearchStats",
    "kmeans",
    "load_index",
    "make_index",
    "matrix_checksum",
    "register_index",
    "save_index",
]
