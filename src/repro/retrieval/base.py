"""The ``ItemIndex`` protocol: one retrieval surface for eval + serving.

CL4SRec's serving path (PR 2) scored the *entire* catalogue with a
dense matmul per request.  This package makes top-k retrieval a
first-class, swappable component behind a small protocol::

    build(item_matrix)           # fit the index to an (N, d) matrix
    search(queries, k, exclude)  # approximate/exact top-k + stats
    score(queries)               # full (B, N) score rows (eval surface)
    save(path) / load(path)      # self-describing on-disk artifact
    stats()                      # structural + memory info
    rebuild(item_matrix)         # same hyperparameters, fresh data

Implementations register themselves by ``kind`` so engines, the CLI
(``repro serve --index ...``, ``repro index``) and artifact loading can
construct them by name:

* ``exact``  — :class:`repro.retrieval.exact.ExactIndex`; the dense
  matmul + partial-sort path the engine always had, bit-identical.
* ``ivf`` / ``ivf_pq`` — :class:`repro.retrieval.ivf.IVFIndex`;
  k-means coarse quantizer with ``nprobe``-controlled probing, int8 /
  product-quantized candidate scoring, exact top-R reranking.

Row 0 of the item matrix is the padding id and is never returned by
``search``; ``score`` leaves it in place (the evaluator masks it, as
it always has).
"""

from __future__ import annotations

import abc
import hashlib
import os
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "INDEX_KINDS",
    "IndexBuildError",
    "IndexMismatchError",
    "ItemIndex",
    "SearchResult",
    "SearchStats",
    "make_index",
    "matrix_checksum",
    "register_index",
]


class IndexBuildError(RuntimeError):
    """An index could not be built or loaded (bad shape, bad artifact)."""


class IndexMismatchError(RuntimeError):
    """A loaded index artifact does not match the serving model.

    Raised when an artifact's item matrix (shape, dtype or checksum)
    disagrees with the matrix the live model produces — serving stale
    or mismatched index artifacts silently would corrupt results.
    Rebuild the artifact with ``repro index`` from the same checkpoint
    and ``--dtype``.
    """


def matrix_checksum(matrix: np.ndarray) -> str:
    """Stable fingerprint of an item matrix (dtype/shape/bytes)."""
    digest = hashlib.sha256()
    digest.update(str(matrix.dtype).encode())
    digest.update(str(matrix.shape).encode())
    digest.update(np.ascontiguousarray(matrix).tobytes())
    return digest.hexdigest()


@dataclass
class SearchStats:
    """Work accounting for one :meth:`ItemIndex.search` call.

    The serving engine forwards these into ``ServingMetrics`` as the
    ``index_clusters_probed`` / ``index_candidates_scored`` /
    ``index_reranked`` counters.
    """

    clusters_probed: int = 0
    candidates_scored: int = 0
    reranked: int = 0


@dataclass
class SearchResult:
    """Top-k retrieval output for a batch of query vectors.

    ``items[b]`` are item ids best-first; slots that could not be
    filled (every candidate excluded, tiny catalogues) carry score
    ``-inf`` — callers keep the finite prefix, exactly like the
    historical engine path did.
    """

    items: np.ndarray  # (B, k) int64
    scores: np.ndarray  # (B, k) float64, -inf on unfilled slots
    stats: SearchStats = field(default_factory=SearchStats)


#: Registry of index implementations by ``kind`` string.
INDEX_KINDS: dict[str, type["ItemIndex"]] = {}


def register_index(cls: type["ItemIndex"]) -> type["ItemIndex"]:
    """Class decorator: make ``cls`` constructible via :func:`make_index`."""
    for kind in cls.kinds:
        if kind in INDEX_KINDS:
            raise ValueError(f"index kind {kind!r} is already registered")
        INDEX_KINDS[kind] = cls
    return cls


def make_index(kind: str, **params) -> "ItemIndex":
    """Construct an (unbuilt) index by registered kind name.

    ``params`` are forwarded to the implementation's constructor; the
    kind itself may imply defaults (e.g. ``"ivf_pq"`` selects product
    quantization).
    """
    try:
        cls = INDEX_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown index kind {kind!r}; registered: {sorted(INDEX_KINDS)}"
        ) from None
    return cls.from_kind(kind, **params)


class ItemIndex(abc.ABC):
    """Abstract base of every retrieval index (see module docstring).

    Subclasses set ``kinds`` (the registry names they answer to) and
    implement the abstract methods; shared validation and the artifact
    round-trip plumbing live here.
    """

    #: Registry names this implementation answers to.
    kinds: tuple[str, ...] = ()

    def __init__(self) -> None:
        self._matrix: np.ndarray | None = None
        self._checksum: str | None = None

    # ------------------------------------------------------------------
    # Construction / registry
    # ------------------------------------------------------------------
    @classmethod
    def from_kind(cls, kind: str, **params) -> "ItemIndex":
        """Build an instance for registry name ``kind`` (hook point)."""
        return cls(**params)

    # ------------------------------------------------------------------
    # Shared state
    # ------------------------------------------------------------------
    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` (or :meth:`load`) has run."""
        return self._matrix is not None

    @property
    def matrix(self) -> np.ndarray:
        """The full-precision item matrix (kept for exact reranking)."""
        self._require_built()
        return self._matrix

    @property
    def checksum(self) -> str:
        """SHA-256 fingerprint of the built item matrix."""
        self._require_built()
        return self._checksum

    @property
    def num_rows(self) -> int:
        """Rows in the indexed matrix (``num_items + 1`` incl. padding)."""
        self._require_built()
        return self._matrix.shape[0]

    @property
    def dim(self) -> int:
        """Embedding dimensionality of the indexed matrix."""
        self._require_built()
        return self._matrix.shape[1]

    def _require_built(self) -> None:
        if self._matrix is None:
            raise IndexBuildError(
                f"{type(self).__name__} is not built; call build(item_matrix) "
                f"or load(path) first"
            )

    def _set_matrix(self, item_matrix: np.ndarray) -> np.ndarray:
        """Validate + adopt the item matrix; returns the adopted array."""
        matrix = np.ascontiguousarray(item_matrix)
        if matrix.ndim != 2 or matrix.shape[0] < 2 or matrix.shape[1] < 1:
            raise IndexBuildError(
                f"item matrix must be (num_items + 1, d) with at least one "
                f"real item, got shape {matrix.shape}"
            )
        if not np.issubdtype(matrix.dtype, np.floating):
            raise IndexBuildError(
                f"item matrix must be floating point, got {matrix.dtype}"
            )
        if not np.all(np.isfinite(matrix)):
            raise IndexBuildError("item matrix contains non-finite values")
        self._matrix = matrix
        self._checksum = matrix_checksum(matrix)
        return matrix

    # ------------------------------------------------------------------
    # The protocol
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def build(self, item_matrix: np.ndarray) -> "ItemIndex":
        """Fit the index to ``item_matrix`` ``(num_items + 1, d)``.

        Returns ``self`` so ``make_index(...).build(matrix)`` chains.
        """

    @abc.abstractmethod
    def search(
        self,
        queries: np.ndarray,
        k: int,
        exclude: list[np.ndarray | None] | None = None,
    ) -> SearchResult:
        """Top-``k`` item ids + float64 scores per query row.

        ``exclude`` optionally carries, per query, an array of item ids
        to remove from the candidate set (the engine passes seen-item
        sets).  The padding id 0 is always excluded.  Ties break
        deterministically by ascending item id.
        """

    @abc.abstractmethod
    def score(self, queries: np.ndarray) -> np.ndarray:
        """Full ``(B, num_rows)`` score rows — the evaluation surface.

        Exact for :class:`ExactIndex`; quantized indexes return their
        *approximate* scores so the evaluator can measure the metric
        cost of compression with the standard protocol.
        """

    @abc.abstractmethod
    def rebuild(self, item_matrix: np.ndarray) -> "ItemIndex":
        """A fresh index with the same hyperparameters on new data.

        The hot-reload path (``RecommendationEngine.swap_model``)
        builds the replacement off to the side and swaps the reference
        atomically, so requests never observe a half-built index.
        """

    def stats(self) -> dict:
        """Structural info for ``/health``, logs and the CLI."""
        payload = {
            "kind": self.kind if self.kinds else type(self).__name__,
            "built": self.is_built,
        }
        if self.is_built:
            payload.update(
                num_rows=self.num_rows,
                dim=self.dim,
                dtype=str(self._matrix.dtype),
                matrix_bytes=int(self._matrix.nbytes),
                checksum=self._checksum,
            )
        return payload

    # ------------------------------------------------------------------
    # Artifacts
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _artifact_arrays(self) -> dict[str, np.ndarray]:
        """Arrays to persist beyond the shared matrix/meta payload."""

    @abc.abstractmethod
    def _artifact_params(self) -> dict:
        """JSON-safe hyperparameters to persist (and restore)."""

    def _restore_arrays(self, arrays: dict[str, np.ndarray]) -> None:
        """Adopt :meth:`_artifact_arrays` payload after a load (hook)."""

    @property
    def kind(self) -> str:
        """The registry name matching this instance's configuration."""
        return self.kinds[0]

    def save(self, path: str | os.PathLike) -> str:
        """Write a self-describing ``.npz`` artifact; returns the path.

        The artifact embeds the full-precision matrix, its checksum and
        the hyperparameters, so :func:`repro.retrieval.io.load_index`
        restores a bit-identical index and the serving engine can
        verify the artifact matches the live model.
        """
        from repro.retrieval.io import save_index

        return save_index(self, path)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "ItemIndex":
        """Load an artifact written by :meth:`save` (kind-checked)."""
        from repro.retrieval.io import load_index

        index = load_index(path)
        if not isinstance(index, cls):
            raise IndexMismatchError(
                f"{os.fspath(path)} holds a {type(index).__name__}, "
                f"not a {cls.__name__}"
            )
        return index

    # ------------------------------------------------------------------
    # Shared search helpers
    # ------------------------------------------------------------------
    def _validate_queries(self, queries: np.ndarray, k: int) -> np.ndarray:
        queries = np.asarray(queries)
        self._require_built()
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise ValueError(
                f"queries must be (B, {self.dim}), got shape {queries.shape}"
            )
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        return queries
