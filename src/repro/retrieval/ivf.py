"""IVF retrieval: k-means routing + compressed scoring + exact rerank.

The contrastive objective shapes the item-embedding space into usable
clusters; this index exploits that structure to make top-k retrieval
sub-linear in the catalogue size:

1. **Coarse quantizer (IVF)** — item vectors are partitioned into
   ``nlist`` k-means cells; each cell keeps an *inverted list* of its
   item ids.  A query scores the ``nlist`` centroids (cheap) and only
   visits the ``nprobe`` most promising cells, so the candidate pool
   is roughly ``nprobe / nlist`` of the catalogue.
2. **Compressed candidate scoring** — candidates are scored against a
   compressed matrix: ``int8`` scalar codes (``quantize="int8"``,
   kind ``ivf``) or product-quantization codes with an ADC lookup
   table (``quantize="pq"``, kind ``ivf_pq``).  ``quantize="none"``
   (kind ``ivf_flat``) scores candidates exactly — with
   ``nprobe = nlist`` that configuration returns exactly the item
   lists of :class:`~repro.retrieval.exact.ExactIndex` (scores agree
   to floating-point rounding), the anchor of the recall property
   tests.
3. **Exact rerank** — the top ``rerank`` candidates by compressed
   score are rescored against the full-precision matrix, so
   quantization error only matters when it pushes a true top-k item
   out of the shortlist entirely.  ``rerank`` and ``nprobe`` are the
   two exactness knobs; the recall@k-vs-latency tradeoff is measured
   in ``benchmarks/test_retrieval_latency.py``.

Ties break by ascending item id at every stage, so results are
deterministic and save/load round-trips are bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.eval.topk import top_k_indices
from repro.retrieval.base import (
    IndexBuildError,
    ItemIndex,
    SearchResult,
    SearchStats,
    register_index,
)
from repro.retrieval.kmeans import kmeans
from repro.retrieval.quantize import Int8Quantizer, ProductQuantizer

__all__ = ["IVFIndex"]

_NEG_INF = -np.inf

#: ``quantize=`` spellings accepted by :class:`IVFIndex`.
_QUANTIZE_MODES = ("none", "int8", "pq")

#: Registry kind implied by each quantize mode (and vice versa).
_KIND_BY_QUANTIZE = {"none": "ivf_flat", "int8": "ivf", "pq": "ivf_pq"}
_QUANTIZE_BY_KIND = {kind: mode for mode, kind in _KIND_BY_QUANTIZE.items()}


def default_nlist(num_items: int) -> int:
    """The ``sqrt(N)`` heuristic, clamped to a sane range."""
    return max(1, min(4096, int(round(np.sqrt(max(1, num_items))))))


@register_index
class IVFIndex(ItemIndex):
    """Inverted-file index with optional int8 / PQ candidate scoring.

    Parameters
    ----------
    nlist:
        Number of k-means cells (``None``: ``sqrt(N)`` at build time).
    nprobe:
        Cells visited per query; clamped to ``nlist``.  More probes =
        higher recall, more candidates scored.
    quantize:
        Candidate-scoring representation: ``"none"`` (exact),
        ``"int8"`` or ``"pq"``.
    rerank:
        Top-R compressed-score candidates rescored exactly per query
        (``None``: ``max(10 * k, 100)`` at search time; ignored when
        ``quantize="none"`` — those scores are already exact).
    pq_m:
        PQ subspace count (must divide the embedding dim).
    kmeans_iters, seed:
        Clustering budget and determinism anchor.
    """

    kinds = tuple(_QUANTIZE_BY_KIND)

    def __init__(
        self,
        nlist: int | None = None,
        nprobe: int = 8,
        quantize: str = "int8",
        rerank: int | None = None,
        pq_m: int = 8,
        kmeans_iters: int = 10,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if quantize not in _QUANTIZE_MODES:
            raise ValueError(
                f"quantize must be one of {_QUANTIZE_MODES}, got {quantize!r}"
            )
        if nlist is not None and nlist < 1:
            raise ValueError(f"nlist must be positive, got {nlist}")
        if nprobe < 1:
            raise ValueError(f"nprobe must be positive, got {nprobe}")
        if rerank is not None and rerank < 1:
            raise ValueError(f"rerank must be positive, got {rerank}")
        self.nlist = nlist
        self.nprobe = int(nprobe)
        self.quantize = quantize
        self.rerank = rerank
        self.pq_m = int(pq_m)
        self.kmeans_iters = int(kmeans_iters)
        self.seed = int(seed)
        self._centroids: np.ndarray | None = None
        self._list_ids: np.ndarray | None = None  # concatenated, per-cell sorted
        self._list_offsets: np.ndarray | None = None  # (nlist + 1,)
        self._codes: np.ndarray | None = None
        self._quantizer: Int8Quantizer | ProductQuantizer | None = None

    @classmethod
    def from_kind(cls, kind: str, **params) -> "IVFIndex":
        params.setdefault("quantize", _QUANTIZE_BY_KIND[kind])
        return cls(**params)

    @property
    def kind(self) -> str:
        """The registry name matching this configuration."""
        return _KIND_BY_QUANTIZE[self.quantize]

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self, item_matrix: np.ndarray) -> "IVFIndex":
        matrix = self._set_matrix(item_matrix)
        # Row 0 is the padding id: never a candidate, so it is kept out
        # of the inverted lists entirely.
        items = matrix[1:].astype(np.float64, copy=False)
        num_items = items.shape[0]
        nlist = self.nlist if self.nlist is not None else default_nlist(num_items)
        nlist = max(1, min(int(nlist), num_items))
        result = kmeans(
            items, nlist, iters=self.kmeans_iters, seed=self.seed
        )
        # self.nlist stays the *configured* knob (None = auto), so a
        # rebuild() on new data re-derives it the same way; the built
        # cell count is :attr:`nlist_built`.
        self._centroids = result.centroids
        order = np.argsort(result.assignments, kind="stable")
        counts = np.bincount(
            result.assignments, minlength=result.centroids.shape[0]
        )
        self._list_offsets = np.concatenate(
            [[0], np.cumsum(counts)]
        ).astype(np.int64)
        # ``order`` is a stable sort of ascending positions, so ids
        # within each cell come out ascending — the tie-break anchor.
        self._list_ids = (order + 1).astype(np.int64)

        if self.quantize == "int8":
            self._quantizer = Int8Quantizer().fit(items)
            self._codes = self._quantizer.encode(matrix)
        elif self.quantize == "pq":
            if matrix.shape[1] % self.pq_m != 0:
                raise IndexBuildError(
                    f"pq_m={self.pq_m} does not divide embedding dim "
                    f"{matrix.shape[1]}"
                )
            self._quantizer = ProductQuantizer(
                m=self.pq_m, iters=self.kmeans_iters, seed=self.seed
            ).fit(items)
            self._codes = self._quantizer.encode(matrix)
        else:
            self._quantizer = None
            self._codes = None
        return self

    @property
    def nlist_built(self) -> int:
        """Cells in the built index (resolved from the auto heuristic)."""
        self._require_built()
        return int(self._centroids.shape[0])

    def rebuild(self, item_matrix: np.ndarray) -> "IVFIndex":
        clone = IVFIndex(
            nlist=self.nlist,  # configured knob; None re-derives sqrt(N)
            nprobe=self.nprobe,
            quantize=self.quantize,
            rerank=self.rerank,
            pq_m=self.pq_m,
            kmeans_iters=self.kmeans_iters,
            seed=self.seed,
        )
        return clone.build(item_matrix)

    def with_params(
        self, nprobe: int | None = None, rerank: int | None = None
    ) -> "IVFIndex":
        """Adjust the exactness knobs in place (no rebuild needed)."""
        if nprobe is not None:
            if nprobe < 1:
                raise ValueError(f"nprobe must be positive, got {nprobe}")
            self.nprobe = int(nprobe)
        if rerank is not None:
            if rerank < 1:
                raise ValueError(f"rerank must be positive, got {rerank}")
            self.rerank = int(rerank)
        return self

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _cell_ids(self, cell: int) -> np.ndarray:
        start, stop = self._list_offsets[cell], self._list_offsets[cell + 1]
        return self._list_ids[start:stop]

    def _approx_scores(self, query: np.ndarray, candidates: np.ndarray) -> np.ndarray:
        if self.quantize == "none":
            return np.asarray(
                self._matrix[candidates] @ query, dtype=np.float64
            )
        return self._quantizer.scores(query, self._codes[candidates])

    def search(
        self,
        queries: np.ndarray,
        k: int,
        exclude: list[np.ndarray | None] | None = None,
    ) -> SearchResult:
        queries = self._validate_queries(queries, k)
        batch = queries.shape[0]
        k = min(k, self.num_rows - 1)
        nprobe = min(self.nprobe, self.nlist_built)
        # Route: rank cells by centroid inner product (the same metric
        # the final scores use), deterministically.
        cell_scores = np.asarray(queries, dtype=np.float64) @ self._centroids.T
        probes = top_k_indices(cell_scores, nprobe)
        if probes.ndim == 1:  # single-cell index
            probes = probes[:, None]

        items = np.zeros((batch, k), dtype=np.int64)
        scores = np.full((batch, k), _NEG_INF, dtype=np.float64)
        stats = SearchStats()
        for b in range(batch):
            candidates = np.concatenate(
                [self._cell_ids(int(cell)) for cell in probes[b]]
                or [np.empty(0, dtype=np.int64)]
            )
            # Cells are disjoint; one sort makes the pool ascending so
            # score ties resolve by item id, matching ExactIndex.
            candidates.sort()
            excluded = exclude[b] if exclude is not None else None
            if excluded is not None and len(excluded) and candidates.size:
                candidates = candidates[
                    ~np.isin(candidates, np.asarray(excluded, dtype=np.int64))
                ]
            stats.clusters_probed += int(nprobe)
            if candidates.size == 0:
                continue
            query = queries[b]
            approx = self._approx_scores(query, candidates)
            stats.candidates_scored += int(candidates.size)
            if self.quantize != "none":
                budget = (
                    self.rerank
                    if self.rerank is not None
                    else max(10 * k, 100)
                )
                shortlist_k = min(int(budget), candidates.size)
                shortlist = candidates[top_k_indices(approx, shortlist_k)]
                shortlist.sort()  # restore ascending ids for tie-breaks
                exact = np.asarray(
                    self._matrix[shortlist] @ query, dtype=np.float64
                )
                stats.reranked += int(shortlist.size)
                candidates, approx = shortlist, exact
            take = min(k, candidates.size)
            top = top_k_indices(approx, take)
            items[b, :take] = candidates[top]
            scores[b, :take] = approx[top]
        return SearchResult(items=items, scores=scores, stats=stats)

    def score(self, queries: np.ndarray) -> np.ndarray:
        """Full score rows from the *compressed* representation.

        ``quantize="none"`` is exact; int8/PQ rows carry the
        quantization error, which is precisely what the evaluator
        wants to measure when it runs the ranking protocol over an
        index (``Evaluator(..., index=...)``).
        """
        queries = self._validate_queries(queries, k=1)
        if self.quantize == "none":
            return np.array(
                queries @ self._matrix.T, dtype=np.float64, copy=True
            )
        if self.quantize == "int8":
            folded = np.asarray(queries, dtype=np.float64) * self._quantizer.scale
            return folded @ self._codes.astype(np.float64).T
        tables = np.einsum(
            "mkd,bmd->bmk",
            self._quantizer.codebooks,
            np.asarray(queries, dtype=np.float64).reshape(
                queries.shape[0], self._quantizer.m, -1
            ),
        )
        codes = self._codes.astype(np.int64)
        total = tables[:, 0, :][:, codes[:, 0]].copy()
        for sub in range(1, self._quantizer.m):
            total += tables[:, sub, :][:, codes[:, sub]]
        return total

    # ------------------------------------------------------------------
    # Introspection / artifacts
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        payload = super().stats()
        payload.update(
            quantize=self.quantize,
            nprobe=self.nprobe,
            rerank=self.rerank,
        )
        if self.is_built:
            counts = np.diff(self._list_offsets)
            payload.update(
                nlist=self.nlist_built,
                list_size_min=int(counts.min()),
                list_size_max=int(counts.max()),
                list_size_mean=float(counts.mean()),
                code_bytes=int(self._codes.nbytes) if self._codes is not None else 0,
                centroid_bytes=int(self._centroids.nbytes),
            )
        return payload

    def _artifact_params(self) -> dict:
        return {
            "nlist": int(self.nlist) if self.nlist is not None else None,
            "nprobe": self.nprobe,
            "quantize": self.quantize,
            "rerank": self.rerank,
            "pq_m": self.pq_m,
            "kmeans_iters": self.kmeans_iters,
            "seed": self.seed,
        }

    def _artifact_arrays(self) -> dict[str, np.ndarray]:
        arrays = {
            "centroids": self._centroids,
            "list_ids": self._list_ids,
            "list_offsets": self._list_offsets,
        }
        if self._codes is not None:
            arrays["codes"] = self._codes
        if self._quantizer is not None:
            arrays.update(self._quantizer.state())
        return arrays

    def _restore_arrays(self, arrays: dict[str, np.ndarray]) -> None:
        self._centroids = np.asarray(arrays["centroids"], dtype=np.float64)
        self._list_ids = np.asarray(arrays["list_ids"], dtype=np.int64)
        self._list_offsets = np.asarray(arrays["list_offsets"], dtype=np.int64)
        if self.quantize == "int8":
            self._quantizer = Int8Quantizer.from_state(arrays)
            self._codes = np.asarray(arrays["codes"], dtype=np.int8)
        elif self.quantize == "pq":
            self._quantizer = ProductQuantizer.from_state(arrays)
            self._codes = np.asarray(arrays["codes"], dtype=np.uint8)
