"""Scale-out training execution modes.

:mod:`repro.train.parallel` provides the deterministic data-parallel
coordinator/worker machinery behind ``workers=N`` on the training
configs (``TrainConfig`` / ``ContrastivePretrainConfig`` /
``JointTrainConfig``) and ``repro train --workers N`` on the CLI.  The
single-process loops themselves stay in :mod:`repro.core.trainer` and
:mod:`repro.models.training`; with ``workers=0`` (the default) nothing
in this package runs and those loops execute byte-identically to every
previous release.
"""

from repro.train.parallel import (
    WorkerFailedError,
    pairwise_sum,
    pretrain_contrastive_parallel,
    train_joint_parallel,
    train_next_item_parallel,
)

__all__ = [
    "WorkerFailedError",
    "pairwise_sum",
    "pretrain_contrastive_parallel",
    "train_joint_parallel",
    "train_next_item_parallel",
]
