"""Deterministic data-parallel training over shared-memory workers.

One coordinator process owns the authoritative model, the optimizer,
the lr schedule, the divergence guard and the
:class:`~repro.runtime.resume.TrainingRuntime`; it forks N workers
(over the same fork-context machinery as :mod:`repro.serve.workers`)
that each hold

* a zero-copy view of the **parameter pages** — one
  :class:`~repro.core.shm.SharedArrays` segment the coordinator
  republishes before every step (workers map it read-only, so N
  workers cost one copy of the weights);
* a private **gradient segment** the worker alone writes — gradients
  never travel through pickle, only through shared pages;
* its own shard of the eligible users (round-robin ``users[w::N]``)
  and its own spawned RNG streams, so augmentation, shuffling, negative
  sampling and dropout are independent across workers but fully
  determined by the seed.

Per step, every active worker builds one micro-batch through the PR-4
pipeline, runs forward/backward with the PR-5 fused kernels, writes its
gradient into shared memory and replies with scalars (loss, row count);
the coordinator then reduces the worker gradients in **fixed worker
order with pairwise (binary-tree) summation** (:func:`pairwise_sum`) —
float addition is not associative, so a fixed reduction tree is what
makes the summed gradient, and therefore the whole run, bit-reproducible
at a fixed worker count.

Determinism contract (tested in ``tests/train/test_parallel.py``):

* Two runs with the same seed **and the same worker count** produce
  bit-identical weights, losses, checkpoints and obs metrics.
* ``workers=0`` never enters this module — the single-process loops run
  byte-identically to the golden fixtures.
* **Different worker counts diverge** (intentionally): each worker
  spawns its own RNG child streams, the effective batch is the union of
  N micro-batches, and steps-per-epoch is the max worker shard's batch
  count — the run is a different (equally valid) sample of the same
  optimization, not a bit-replay of ``workers=0``.
* Resume restores every worker's RNG streams: the checkpoint carries
  one ``aux/worker_rng`` group with each worker's serialized generator
  states, captured at epoch boundaries.  Worker streams are *spawned*
  in a fresh process (spawn counters are not part of generator state)
  and then *restored*, so a resumed run continues bit-exactly.

Failure model: a worker that dies, hangs past ``worker_timeout_s`` or
raises mid-step surfaces as a structured :class:`WorkerFailedError`
naming the worker and the global step; the coordinator's ``finally``
tears every shared segment down (close + unlink) so nothing leaks.
``FaultInjector.kill_worker`` schedules a deterministic worker death
for tests.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from contextlib import nullcontext

import numpy as np

from repro.augment.batched import spawn_stream
from repro.core.shm import SharedArrays, adopt_parameters
from repro.data.loaders import (
    ContrastiveBatchLoader,
    NextItemBatchLoader,
    PopularityNegativeSampler,
)
from repro.data.pipeline import CyclingStream, Prefetcher
from repro.nn import precision
from repro.nn.optim import Adam, GradientClipper, LinearDecaySchedule
from repro.nn.serialization import CheckpointError
from repro.runtime.resume import capture_rng_states, restore_rng_states

__all__ = [
    "WorkerFailedError",
    "ParallelWorkerPool",
    "pairwise_sum",
    "pretrain_contrastive_parallel",
    "train_joint_parallel",
    "train_next_item_parallel",
]

#: Checkpoint aux group holding each worker's serialized RNG streams.
WORKER_RNG_GROUP = "worker_rng"


class WorkerFailedError(RuntimeError):
    """A training worker died, hung, or errored — named, not silent.

    ``worker`` is the failed worker's id, ``step`` the 1-based global
    step the coordinator was driving when the failure surfaced (0 when
    it happened outside the step loop, e.g. at startup).
    """

    def __init__(self, worker: int, step: int, message: str) -> None:
        super().__init__(message)
        self.worker = int(worker)
        self.step = int(step)


def pairwise_sum(arrays: list[np.ndarray]) -> np.ndarray:
    """Fixed-order pairwise (binary-tree) summation.

    The reduction tree depends only on ``len(arrays)`` — never on
    which worker replied first — so summing N worker gradients is
    bit-reproducible at fixed N.  Pairwise summation also carries the
    classic O(log N) rounding-error bound, for free.
    """
    items = list(arrays)
    if not items:
        raise ValueError("pairwise_sum needs at least one array")
    while len(items) > 1:
        merged = [items[i] + items[i + 1] for i in range(0, len(items) - 1, 2)]
        if len(items) % 2:
            merged.append(items[-1])
        items = merged
    return items[0]


def _dedup_rngs(rngs) -> list:
    """Identity-deduplicated generator list (order-preserving)."""
    deduped: list = []
    for rng in rngs:
        if isinstance(rng, np.random.Generator) and all(
            rng is not seen for seen in deduped
        ):
            deduped.append(rng)
    return deduped


def _contrastive_steps(shard_size: int, batch_size: int) -> int:
    """Batches a ContrastiveBatchLoader actually yields per epoch.

    The loader skips any chunk of fewer than 2 users (a contrastive
    batch needs an in-batch negative), which can only be the final
    remainder chunk.
    """
    if shard_size < 2 or batch_size < 2:
        return 0
    chunks = -(-shard_size // batch_size)
    if shard_size % batch_size == 1:
        chunks -= 1
    return chunks


# ----------------------------------------------------------------------
# Worker-side stage adapters
# ----------------------------------------------------------------------
class _StageBase:
    """One training stage as seen by a worker: loaders + a step fn."""

    def __init__(self) -> None:
        self._stream = None

    def _open(self, source, pipeline: str):
        if pipeline == "vectorized":
            return Prefetcher(source)
        return source

    def _close_stream(self, stream):
        close = getattr(stream, "close", None)
        if close is not None:
            close()

    def close(self) -> None:
        if self._stream is not None:
            self._close_stream(self._stream)
            self._stream = None


class _PretrainStage(_StageBase):
    """NT-Xent over this worker's contrastive shard."""

    def __init__(self, model, dataset, config, rng, worker, workers) -> None:
        super().__init__()
        self.model = model
        self.pipeline = config.pipeline
        self.loader = ContrastiveBatchLoader(
            dataset,
            model.pair_sampler,
            config.max_length,
            config.batch_size,
            rng,
            pipeline=config.pipeline,
            worker_shard=(worker, workers),
        )
        self.steps_per_epoch = _contrastive_steps(
            len(self.loader._users), config.batch_size
        )
        self.rngs = _dedup_rngs([rng, self.loader._rng, model._rng])

    def begin_epoch(self) -> None:
        self.close()
        self._stream = self._open(self.loader.epoch(), self.pipeline)

    def step(self):
        batch = next(self._stream)
        loss, accuracy = self.model.contrastive_loss(batch)
        return loss, len(batch.users), {"accuracy": float(accuracy)}


class _NextItemStage(_StageBase):
    """Masked next-item BCE over this worker's supervised shard."""

    def __init__(self, model, dataset, config, rng, worker, workers) -> None:
        super().__init__()
        self.model = model
        self.pipeline = config.pipeline
        sampler = None
        if getattr(config, "negative_alpha", 0.0) > 0:
            sampler = PopularityNegativeSampler.from_sequences(
                dataset.train_sequences,
                dataset.num_items,
                rng,
                alpha=config.negative_alpha,
            )
        self.loader = NextItemBatchLoader(
            dataset,
            config.max_length,
            config.batch_size,
            rng,
            negative_sampler=sampler,
            pipeline=config.pipeline,
            worker_shard=(worker, workers),
        )
        shard = len(self.loader._users)
        self.steps_per_epoch = -(-shard // config.batch_size) if shard else 0
        self.rngs = _dedup_rngs([rng, self.loader._rng, model._rng])

    def begin_epoch(self) -> None:
        self.close()
        self._stream = self._open(self.loader.epoch(), self.pipeline)

    def step(self):
        batch = next(self._stream)
        loss = self.model.sequence_loss(batch)
        return loss, len(batch.users), {}


class _JointStage(_StageBase):
    """``L_rec + λ·L_cl`` over this worker's two shards.

    The contrastive side cycles **synchronously** (no prefetch thread)
    even on the vectorized pipeline: a background thread keeps drawing
    from the loader's stream after the epoch's last step, which would
    make the end-of-epoch RNG capture depend on thread timing.  The
    supervised side is fully consumed every epoch, so it prefetches
    freely.
    """

    def __init__(self, model, dataset, config, rng, worker, workers) -> None:
        super().__init__()
        self.model = model
        self.config = config
        self.pipeline = config.pipeline
        self.next_loader = NextItemBatchLoader(
            dataset,
            config.max_length,
            config.batch_size,
            rng,
            pipeline=config.pipeline,
            worker_shard=(worker, workers),
        )
        self.cl_loader = ContrastiveBatchLoader(
            dataset,
            model.pair_sampler,
            config.max_length,
            config.batch_size,
            rng,
            pipeline=config.pipeline,
            worker_shard=(worker, workers),
        )
        shard = len(self.next_loader._users)
        self.steps_per_epoch = -(-shard // config.batch_size) if shard else 0
        if _contrastive_steps(len(self.cl_loader._users), config.batch_size) == 0:
            # The contrastive shard can't form a single batch (fewer
            # than 2 eligible users landed here); this worker sits the
            # run out rather than cycling an empty stream forever.
            self.steps_per_epoch = 0
        self.rngs = _dedup_rngs(
            [rng, self.next_loader._rng, self.cl_loader._rng, model._rng]
        )
        self._cl_stream = None

    def begin_epoch(self) -> None:
        self.close()
        self._stream = self._open(self.next_loader.epoch(), self.pipeline)
        self._cl_stream = CyclingStream(self.cl_loader, pipeline="reference")

    def step(self):
        batch = next(self._stream)
        loss = self.model.sequence_loss(batch)
        cl_batch = self._cl_stream.next()
        cl_loss, __acc = self.model.contrastive_loss(cl_batch)
        total = loss + self.config.cl_weight * cl_loss
        return total, len(batch.users), {
            "rec": float(loss.item()),
            "cl": float(cl_loss.item()),
        }

    def close(self) -> None:
        super().close()
        if self._cl_stream is not None:
            self._cl_stream.close()
            self._cl_stream = None


_STAGES = {
    "pretrain": _PretrainStage,
    "joint": _JointStage,
    "next_item": _NextItemStage,
}


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _send_error(conn, error: BaseException) -> None:
    """Ship an exception to the coordinator, degrading to a message."""
    try:
        conn.send(("error", error))
    except Exception:
        try:
            conn.send(("error", RuntimeError(f"{type(error).__name__}: {error}")))
        except Exception:
            pass


def _rebind_model_rng(model, stream) -> None:
    """Point every module-held generator reference at ``stream``.

    Layers capture the model's generator *object* at construction time
    (dropout shares ``model._rng``), so rebinding only ``model._rng``
    would leave dropout drawing from the fork-inherited coordinator
    generator — invisible to the worker's RNG capture/restore and
    therefore not bit-exact across a resume.
    """
    old = getattr(model, "_rng", None)
    for module in model.modules():
        for name, value in list(vars(module).items()):
            if value is old:
                object.__setattr__(module, name, stream)
    model._rng = stream


def _train_worker_main(conn, spec: dict) -> None:
    """Training-worker entry point: adopt shared state, serve commands.

    Commands: ``("epoch", e)`` opens the epoch's batch streams,
    ``("step",)`` computes one micro-batch's gradient into the worker's
    gradient segment and replies with scalars, ``("get_rng",)`` /
    ``("set_rng", packed)`` serialize/restore the worker's generator
    streams for checkpointing, ``("shutdown",)`` exits cleanly.
    """
    stage = pages = grads = None
    try:
        model = spec["model"]
        config = spec["config"]
        worker = spec["worker"]
        dtype = np.dtype(spec["dtype"])
        pages = SharedArrays.attach(spec["pages"])
        adopt_parameters(model, pages.views)
        grads = SharedArrays.attach(spec["grads"], writeable=True)
        # Dropout moves to its own spawned stream — the loop generator
        # keeps feeding the loaders exactly as in single-process mode.
        rng = spec["rng"]
        _rebind_model_rng(model, spawn_stream(rng))
        stage = _STAGES[spec["stage"]](
            model, spec["dataset"], config, rng, worker, spec["workers"]
        )
        wanted = set(spec["trainable"])
        trainable = [
            (name, param)
            for name, param in model.named_parameters()
            if name in wanted
        ]
        faults = spec["faults"]
        conn.send(("ok", {
            "steps_per_epoch": stage.steps_per_epoch,
            "pid": os.getpid(),
        }))
    except BaseException as error:  # surface startup failures
        _send_error(conn, error)
        conn.close()
        return

    model.train()
    with precision.precision(dtype):
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError, KeyboardInterrupt):
                break
            command = message[0]
            try:
                if command == "epoch":
                    stage.begin_epoch()
                    conn.send(("ok", None))
                elif command == "step":
                    if faults is not None:
                        faults.on_worker_step(worker)
                    started = time.perf_counter()
                    loss, count, extras = stage.step()
                    model.zero_grad()
                    loss.backward()
                    missing = []
                    for index, (name, param) in enumerate(trainable):
                        view = grads.views[name]
                        if param.grad is None:
                            view[...] = 0.0
                            missing.append(index)
                        else:
                            view[...] = param.grad
                    payload = {
                        "loss": float(loss.item()),
                        "count": int(count),
                        "seconds": time.perf_counter() - started,
                        "missing": missing,
                    }
                    payload.update(extras)
                    conn.send(("ok", payload))
                elif command == "get_rng":
                    conn.send(("ok", capture_rng_states(stage.rngs)))
                elif command == "set_rng":
                    restore_rng_states(stage.rngs, message[1])
                    conn.send(("ok", None))
                elif command == "shutdown":
                    conn.send(("ok", None))
                    break
                else:
                    conn.send(
                        ("error", ValueError(f"unknown command {command!r}"))
                    )
            except BaseException as error:
                _send_error(conn, error)

    if stage is not None:
        stage.close()
    if pages is not None:
        pages.close()
    if grads is not None:
        grads.close()
    conn.close()


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
class ParallelWorkerPool:
    """N forked training workers over shared parameter pages.

    Lifecycle mirrors :class:`repro.serve.workers.ShardedEngine`: the
    coordinator creates every segment and is the only process that
    unlinks it; workers attach and close.  All control flow is
    synchronous — one command, one reply, in worker order — which is
    exactly what keeps the run deterministic.
    """

    def __init__(
        self,
        stage: str,
        model,
        dataset,
        config,
        rng: np.random.Generator,
        workers: int,
        dtype: np.dtype,
        faults=None,
        start_method: str | None = None,
        worker_timeout_s: float = 300.0,
    ) -> None:
        if stage not in _STAGES:
            raise ValueError(f"unknown stage {stage!r}")
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.stage = stage
        self.workers = int(workers)
        self.worker_timeout_s = float(worker_timeout_s)
        self._closed = False
        self._global_step = 0

        # Optimizer parameter order mirrors the single-process loops;
        # the gradient-page layout uses state-dict names in
        # named_parameters order (same Parameter objects either way).
        if stage == "next_item":
            params = list(model.parameters())
        else:
            params = list(model.contrastive_parameters())
        ids = {id(param) for param in params}
        self.params = params
        self.trainable = [
            (name, param)
            for name, param in model.named_parameters()
            if id(param) in ids
        ]

        # Workers' root streams are spawned BEFORE any checkpoint
        # restore: generator state does not include spawn counters, so
        # a fresh process must always spawn the same children first and
        # restore their bit states afterwards (see restore_rng).
        child_rngs = [spawn_stream(rng) for __ in range(self.workers)]

        self._pages = SharedArrays.create(
            {name: param.data for name, param in model.named_parameters()},
            name_prefix="repro-train",
            writeable=True,
        )
        zeros = {name: np.zeros_like(param.data) for name, param in self.trainable}
        self._grads = [
            SharedArrays.create(zeros, name_prefix="repro-grad")
            for __ in range(self.workers)
        ]
        self.grad_payload_bytes = self._grads[0].payload_bytes

        context = multiprocessing.get_context(start_method or "fork")
        self.start_method = context.get_start_method()
        self._conns = []
        self._procs = []
        try:
            for worker in range(self.workers):
                parent_conn, child_conn = context.Pipe()
                spec = {
                    "stage": stage,
                    "model": model,
                    "dataset": dataset,
                    "config": config,
                    "rng": child_rngs[worker],
                    "worker": worker,
                    "workers": self.workers,
                    "dtype": dtype.name if hasattr(dtype, "name") else str(dtype),
                    "pages": self._pages.meta(),
                    "grads": self._grads[worker].meta(),
                    "trainable": [name for name, __ in self.trainable],
                    "faults": faults,
                }
                process = context.Process(
                    target=_train_worker_main,
                    args=(child_conn, spec),
                    name=f"repro-train-worker-{worker}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(process)
            self.steps_per_worker = [
                int(self._recv(worker)["steps_per_epoch"])
                for worker in range(self.workers)
            ]
        except BaseException:
            self.close()
            raise
        #: The coordinator drives the max shard's batch count; workers
        #: whose (smaller) shard is exhausted idle out the step tail.
        self.steps_per_epoch = max(self.steps_per_worker, default=0)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _send(self, worker: int, message) -> None:
        try:
            self._conns[worker].send(message)
        except (BrokenPipeError, OSError) as error:
            process = self._procs[worker] if worker < len(self._procs) else None
            exitcode = process.exitcode if process is not None else None
            raise WorkerFailedError(
                worker,
                self._global_step,
                f"training worker {worker} died at global step "
                f"{self._global_step} (exit code {exitcode})",
            ) from error

    def _recv(self, worker: int):
        conn = self._conns[worker]
        deadline = time.monotonic() + self.worker_timeout_s
        while not conn.poll(0.05):
            process = self._procs[worker] if worker < len(self._procs) else None
            if process is not None and not process.is_alive():
                if conn.poll(0):  # drain a reply racing the exit
                    break
                raise WorkerFailedError(
                    worker,
                    self._global_step,
                    f"training worker {worker} died at global step "
                    f"{self._global_step} (exit code {process.exitcode})",
                )
            if time.monotonic() >= deadline:
                raise WorkerFailedError(
                    worker,
                    self._global_step,
                    f"training worker {worker} did not reply within "
                    f"{self.worker_timeout_s:g}s at global step "
                    f"{self._global_step}",
                )
        try:
            status, payload = conn.recv()
        except (EOFError, OSError) as error:
            raise WorkerFailedError(
                worker,
                self._global_step,
                f"training worker {worker} exited unexpectedly at global "
                f"step {self._global_step}",
            ) from error
        if status == "error":
            cause = (
                payload
                if isinstance(payload, BaseException)
                else RuntimeError(str(payload))
            )
            raise WorkerFailedError(
                worker,
                self._global_step,
                f"training worker {worker} failed at global step "
                f"{self._global_step}: {cause}",
            ) from cause
        return payload

    # ------------------------------------------------------------------
    # Training protocol
    # ------------------------------------------------------------------
    def publish(self, model) -> None:
        """Copy the coordinator's current parameters into the pages."""
        views = self._pages.views
        for name, param in model.named_parameters():
            views[name][...] = param.data

    def begin_epoch(self, epoch: int) -> None:
        """Open every worker's batch streams for ``epoch``."""
        for worker in range(self.workers):
            self._send(worker, ("epoch", epoch))
        for worker in range(self.workers):
            self._recv(worker)

    def step(self, step_index: int):
        """Drive one synchronous step on every still-active worker."""
        self._global_step += 1
        active = [
            worker
            for worker in range(self.workers)
            if self.steps_per_worker[worker] > step_index
        ]
        for worker in active:
            self._send(worker, ("step",))
        payloads = [self._recv(worker) for worker in active]
        return active, payloads

    def reduce_gradients(self, active: list[int], payloads: list[dict]) -> float:
        """Fixed-order weighted allreduce into ``param.grad``.

        Each worker's gradient is the mean over its ``count`` rows;
        weighting by row count and dividing by the union size yields
        the exact gradient of the union micro-batch's mean loss.
        Workers that saw no gradient for a parameter shipped zeros —
        they stay in the tree (fixed shape) unless *every* worker
        missed it, in which case the parameter keeps ``grad=None`` so
        the optimizer skips it exactly like the single-process loop.
        Returns the union row count.
        """
        counts = [int(payload["count"]) for payload in payloads]
        total = float(sum(counts))
        skip = set(payloads[0]["missing"]) if payloads else set()
        for payload in payloads[1:]:
            skip &= set(payload["missing"])
        for index, (name, param) in enumerate(self.trainable):
            if index in skip:
                param.grad = None
                continue
            scaled = [
                self._grads[worker].views[name] * float(count)
                for worker, count in zip(active, counts)
            ]
            grad = pairwise_sum(scaled)
            grad /= total
            param.grad = grad
        return total

    # ------------------------------------------------------------------
    # RNG stream checkpointing
    # ------------------------------------------------------------------
    def capture_rng(self) -> dict[str, np.ndarray]:
        """Every worker's serialized generator states (aux group)."""
        for worker in range(self.workers):
            self._send(worker, ("get_rng",))
        return {
            f"worker_{worker}": np.asarray(self._recv(worker))
            for worker in range(self.workers)
        }

    def restore_rng(self, group: dict[str, np.ndarray]) -> None:
        """Restore each worker's streams from a checkpoint aux group."""
        if len(group) != self.workers:
            raise CheckpointError(
                f"checkpoint holds RNG streams for {len(group)} training "
                f"workers, run has {self.workers} — resume with the worker "
                f"count the run was started with"
            )
        for worker in range(self.workers):
            key = f"worker_{worker}"
            if key not in group:
                raise CheckpointError(
                    f"checkpoint is missing RNG streams for training "
                    f"worker {worker}"
                )
            self._send(worker, ("set_rng", group[key]))
        for worker in range(self.workers):
            self._recv(worker)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self, timeout: float = 5.0) -> None:
        """Stop workers and retire every shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        conns = getattr(self, "_conns", [])
        for conn in conns:
            try:
                conn.send(("shutdown",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        for conn in conns:
            try:
                if conn.poll(timeout):
                    conn.recv()
            except (EOFError, OSError):
                pass
        for process in getattr(self, "_procs", []):
            process.join(timeout)
            if process.is_alive():
                process.terminate()
                process.join(1.0)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        pages = getattr(self, "_pages", None)
        if pages is not None:
            pages.close()
            pages.unlink()
        for grad in getattr(self, "_grads", []):
            grad.close()
            grad.unlink()

    def __enter__(self) -> "ParallelWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close(timeout=1.0)
        except Exception:
            pass


# ----------------------------------------------------------------------
# Coordinator loops
# ----------------------------------------------------------------------
_EPOCH_EVENTS = {
    "pretrain": ("pretrain_epoch", "pretrain"),
    "joint": ("joint_epoch", "joint"),
    "next_item": ("train_epoch", "supervised"),
}


def _weighted(payloads: list[dict], counts: list[int], key: str, total: float) -> float:
    """Row-count-weighted mean of a per-worker scalar (fixed order)."""
    return sum(
        payload[key] * count for payload, count in zip(payloads, counts)
    ) / total


def _run_parallel(stage, model, dataset, config, rng, runtime, obs):
    """The shared coordinator loop behind all three parallel stages."""
    from repro.core.trainer import PretrainHistory, _emit_epoch, _runtime_rngs
    from repro.models.training import TrainingHistory

    workers = int(getattr(config, "workers", 0))
    if workers < 1:
        raise ValueError(
            f"parallel training needs workers >= 1, got {workers}"
        )
    rng = rng if rng is not None else np.random.default_rng(config.seed)
    # Cast before segments and the optimizer are created so shared
    # pages, gradient segments and Adam's moments share the dtype.
    dtype = precision.resolve_dtype(config.dtype)
    model.to_dtype(dtype)

    faults = runtime.faults if runtime is not None else None
    pool = ParallelWorkerPool(
        stage, model, dataset, config, rng, workers, dtype, faults=faults
    )
    try:
        optimizer = Adam(pool.params, lr=config.learning_rate)
        schedule = LinearDecaySchedule(
            optimizer,
            total_steps=max(1, config.epochs * pool.steps_per_epoch),
            final_factor=config.lr_final_factor,
        )
        clipper = GradientClipper(pool.params, config.clip_norm)

        if stage == "pretrain":
            history = PretrainHistory()
            hist = {
                "losses": history.losses,
                "accuracies": history.accuracies,
            }
        elif stage == "joint":
            history: list[float] = []
            hist = {"losses": history}
        else:
            history = TrainingHistory()
            hist = {
                "losses": history.losses,
                "valid_scores": history.valid_scores,
            }

        evaluator = None
        stop_state = None
        if stage == "next_item":
            if config.eval_every > 0:
                from repro.eval.evaluator import Evaluator

                evaluator = Evaluator(dataset, split="valid")
            stop_state = {
                "best_metric": -np.inf,
                "epochs_since_best": 0.0,
                "best_epoch": -1.0,
                "stopped_early": 0.0,
            }
        aux: dict[str, dict[str, np.ndarray]] = {}
        best_state: dict | None = None

        start_epoch = 0
        if runtime is not None:
            start_epoch = runtime.start(
                model=model,
                optimizer=optimizer,
                schedule=schedule,
                rngs=_runtime_rngs(model, rng),
                history=hist,
                extras=stop_state,
                aux=aux,
            )
            if aux.get(WORKER_RNG_GROUP):
                pool.restore_rng(aux[WORKER_RNG_GROUP])
            if stage == "next_item":
                history.best_epoch = int(stop_state["best_epoch"])
                if stop_state["stopped_early"]:
                    history.stopped_early = True
                    start_epoch = config.epochs
            best_state = aux.get("best") or None

        event_name, stage_label = _EPOCH_EVENTS[stage]
        model.train()
        with precision.precision(dtype), (
            runtime.session() if runtime is not None else nullcontext()
        ):
            for epoch in range(start_epoch, config.epochs):
                # Worker streams are captured at epoch start (before
                # the epoch's permutations are drawn) so an interrupt
                # mid-epoch resumes by replaying the epoch bit-exactly.
                aux[WORKER_RNG_GROUP] = pool.capture_rng()
                if runtime is not None:
                    runtime.begin_epoch(epoch)
                epoch_started = time.perf_counter()
                epoch_loss, epoch_acc, batches = 0.0, 0.0, 0
                rec_sum, cl_sum = 0.0, 0.0
                grad_norm_sum, sequences = 0.0, 0
                per_worker = [
                    {"steps": 0, "sequences": 0, "seconds": 0.0}
                    for __ in range(workers)
                ]
                pool.begin_epoch(epoch)
                for step in range(pool.steps_per_epoch):
                    pool.publish(model)
                    active, payloads = pool.step(step)
                    counts = [int(payload["count"]) for payload in payloads]
                    reduce_started = time.perf_counter()
                    total = pool.reduce_gradients(active, payloads)
                    reduce_seconds = time.perf_counter() - reduce_started
                    loss_value = _weighted(payloads, counts, "loss", total)
                    for worker, payload in zip(active, payloads):
                        stats = per_worker[worker]
                        stats["steps"] += 1
                        stats["sequences"] += payload["count"]
                        stats["seconds"] += payload["seconds"]
                    if obs is not None:
                        obs.observe("train.allreduce_seconds", reduce_seconds)
                        obs.increment(
                            "train.grad_bytes_reduced",
                            pool.grad_payload_bytes * len(active),
                        )
                        for payload in payloads:
                            if payload["seconds"] > 0:
                                obs.observe(
                                    "train.worker_items_per_sec",
                                    payload["count"] / payload["seconds"],
                                )
                    grad_norm = clipper.clip()
                    if runtime is not None:
                        loss_value = runtime.intercept_loss(loss_value)
                        if not runtime.allow_update(loss_value, grad_norm):
                            optimizer.zero_grad()
                            runtime.after_step()
                            continue
                    optimizer.step()
                    schedule.step()
                    epoch_loss += loss_value
                    if stage == "pretrain":
                        epoch_acc += _weighted(payloads, counts, "accuracy", total)
                    elif stage == "joint":
                        rec_sum += _weighted(payloads, counts, "rec", total)
                        cl_sum += config.cl_weight * _weighted(
                            payloads, counts, "cl", total
                        )
                    grad_norm_sum += grad_norm
                    sequences += int(total)
                    batches += 1
                    if runtime is not None:
                        runtime.after_step()

                mean_loss = epoch_loss / max(1, batches)
                if stage == "pretrain":
                    history.losses.append(mean_loss)
                    history.accuracies.append(epoch_acc / max(1, batches))
                elif stage == "joint":
                    history.append(mean_loss)
                else:
                    history.losses.append(mean_loss)
                seconds = time.perf_counter() - epoch_started
                if obs is not None:
                    extra = {"workers": workers}
                    if stage == "pretrain":
                        extra["accuracy"] = history.accuracies[-1]
                    elif stage == "joint":
                        extra["rec_loss"] = rec_sum / max(1, batches)
                        extra["cl_loss"] = cl_sum / max(1, batches)
                        extra["cl_weight"] = config.cl_weight
                    _emit_epoch(
                        obs,
                        event_name,
                        stage=stage_label,
                        epoch=epoch,
                        loss=mean_loss,
                        batches=batches,
                        sequences=sequences,
                        grad_norm_sum=grad_norm_sum,
                        seconds=seconds,
                        lr=optimizer.lr,
                        **extra,
                    )
                    for worker in range(workers):
                        stats = per_worker[worker]
                        obs.event(
                            "parallel_worker",
                            stage=stage_label,
                            epoch=epoch,
                            worker=worker,
                            steps=stats["steps"],
                            sequences=stats["sequences"],
                            compute_seconds=stats["seconds"],
                            items_per_sec=(
                                stats["sequences"] / stats["seconds"]
                                if stats["seconds"] > 0
                                else 0.0
                            ),
                        )

                stop = False
                if evaluator is not None and (epoch + 1) % config.eval_every == 0:
                    model.eval()
                    result = evaluator.evaluate(
                        model, max_users=config.max_eval_users, obs=obs
                    )
                    model.train()
                    score = result[config.early_stopping_metric]
                    history.valid_scores.append(score)
                    if score > stop_state["best_metric"]:
                        stop_state["best_metric"] = score
                        stop_state["best_epoch"] = float(epoch)
                        stop_state["epochs_since_best"] = 0.0
                        best_state = model.state_dict()
                        aux["best"] = best_state
                        history.best_epoch = epoch
                    else:
                        stop_state["epochs_since_best"] += 1.0
                        if stop_state["epochs_since_best"] >= config.patience:
                            history.stopped_early = True
                            stop_state["stopped_early"] = 1.0
                            stop = True

                aux[WORKER_RNG_GROUP] = pool.capture_rng()
                if runtime is not None:
                    runtime.end_epoch(epoch)
                if stop:
                    break
        if runtime is not None:
            runtime.finalize()
    finally:
        pool.close()

    if stage == "next_item" and best_state is not None:
        model.load_state_dict(best_state)
    model.eval()
    return history


def pretrain_contrastive_parallel(
    model, dataset, config, rng=None, runtime=None, obs=None
):
    """Data-parallel NT-Xent pre-training (``config.workers`` workers).

    Same contract and return type as
    :func:`repro.core.trainer.pretrain_contrastive`; see the module
    docstring for the determinism contract.
    """
    return _run_parallel("pretrain", model, dataset, config, rng, runtime, obs)


def train_joint_parallel(model, dataset, config, rng=None, runtime=None, obs=None):
    """Data-parallel joint ``L_rec + λ·L_cl`` training.

    Same contract and return type as
    :func:`repro.core.trainer.train_joint`.
    """
    return _run_parallel("joint", model, dataset, config, rng, runtime, obs)


def train_next_item_parallel(
    model, dataset, config, rng=None, runtime=None, obs=None
):
    """Data-parallel supervised next-item training.

    Same contract and return type as
    :func:`repro.models.training.train_next_item_model`, including
    mid-training validation and early stopping (evaluated by the
    coordinator on the authoritative weights).
    """
    return _run_parallel("next_item", model, dataset, config, rng, runtime, obs)
