"""Fault-tolerant training runtime.

Crash-safe checkpointing, bit-exact resume, divergence guards, and a
deterministic fault-injection harness — the robustness layer between
the nn substrate and the training loops:

* :mod:`repro.runtime.checkpointing` — atomic archive writes, content
  checksums, last-K rotation, recover-from-newest-valid.
* :mod:`repro.runtime.resume` — :class:`TrainingRuntime`: periodic
  checkpoint hooks, SIGTERM/SIGINT flush-and-exit, resume that restores
  model + optimizer + schedule + RNG + history in place.
* :mod:`repro.runtime.guards` — :class:`DivergenceGuard`: per-step
  loss/gradient finiteness checks with rollback and lr backoff.
* :mod:`repro.runtime.faults` — :class:`FaultInjector`: seedable IO
  errors, forced NaN losses, simulated preemption.

See ``docs/ROBUSTNESS.md`` for the checkpoint format and semantics.
"""

from repro.nn.serialization import CheckpointError
from repro.runtime.checkpointing import (
    CheckpointManager,
    file_sha256,
    read_archive,
    verify_archive,
    write_archive,
)
from repro.runtime.faults import Fault, FaultInjector, SimulatedPreemption
from repro.runtime.guards import DivergenceError, DivergenceGuard
from repro.runtime.resume import (
    TrainingInterrupted,
    TrainingRuntime,
    capture_rng_states,
    restore_rng_states,
)

__all__ = [
    "CheckpointError",
    "CheckpointManager",
    "DivergenceError",
    "DivergenceGuard",
    "Fault",
    "FaultInjector",
    "SimulatedPreemption",
    "TrainingInterrupted",
    "TrainingRuntime",
    "capture_rng_states",
    "file_sha256",
    "read_archive",
    "restore_rng_states",
    "verify_archive",
    "write_archive",
]
