"""Crash-safe checkpoint archives with checksums, rotation and recovery.

The nn layer (:mod:`repro.nn.checkpoint`) knows how to serialize one
model + optimizer into one ``.npz``.  This module adds what a long run
on unreliable hardware needs on top:

* **Atomic writes** — temp file + fsync + ``os.replace``; a crash never
  leaves a half-written archive under the final name.
* **Content checksums** — every archive gets a ``<name>.npz.sha256``
  sidecar; silent corruption (bit rot, partial copies) is detected at
  load time instead of surfacing as a NumPy error deep inside training.
* **Rotation** — :class:`CheckpointManager` keeps the newest K archives
  in a directory, so disk usage is bounded but a corrupted newest file
  still leaves K-1 fallbacks.
* **Recovery** — :meth:`CheckpointManager.load_latest_valid` walks
  checkpoints newest-first and returns the first one that passes
  verification, skipping (and reporting) corrupt ones.

Archives are flat ``name -> array`` dicts; the semantic packing of
model/optimizer/RNG/history state lives in :mod:`repro.runtime.resume`.
"""

from __future__ import annotations

import hashlib
import os
import re
from typing import Mapping

import numpy as np

from repro.nn.serialization import CheckpointError, atomic_write, atomic_write_bytes
from repro.runtime.faults import FaultInjector

CHECKSUM_SUFFIX = ".sha256"


def file_sha256(path: str | os.PathLike) -> str:
    """Hex SHA-256 of a file's content, streamed."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def write_archive(
    path: str | os.PathLike,
    arrays: Mapping[str, np.ndarray],
    faults: FaultInjector | None = None,
) -> None:
    """Atomically write an ``.npz`` archive plus its checksum sidecar.

    The archive lands first, the sidecar second (both atomic).  A crash
    between the two leaves a new archive with a stale sidecar, which
    verification treats as corrupt — recovery then falls back to an
    older checkpoint, never to garbage.
    """
    if faults is not None:
        faults.on_checkpoint_write(path)
    payload = {name: np.asarray(values) for name, values in arrays.items()}
    atomic_write(path, lambda handle: np.savez(handle, **payload))
    atomic_write_bytes(
        f"{os.fspath(path)}{CHECKSUM_SUFFIX}",
        (file_sha256(path) + "\n").encode("ascii"),
    )


def verify_archive(path: str | os.PathLike) -> None:
    """Raise :class:`CheckpointError` unless ``path`` matches its checksum.

    A missing sidecar is accepted (plain archives written by
    :mod:`repro.nn.checkpoint` have none); a *mismatching* one is
    corruption.
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        raise CheckpointError(f"{path}: checkpoint does not exist")
    sidecar = path + CHECKSUM_SUFFIX
    if not os.path.exists(sidecar):
        return
    with open(sidecar) as handle:
        expected = handle.read().strip()
    actual = file_sha256(path)
    if actual != expected:
        raise CheckpointError(
            f"{path}: checksum mismatch (expected {expected[:12]}…, "
            f"got {actual[:12]}…) — archive is corrupt"
        )


def read_archive(
    path: str | os.PathLike,
    faults: FaultInjector | None = None,
    verify: bool = True,
) -> dict[str, np.ndarray]:
    """Load an archive written by :func:`write_archive`, verified.

    Raises :class:`CheckpointError` on checksum mismatch or an archive
    that fails to parse (truncated zip, bad header, ...).
    """
    if faults is not None:
        faults.on_checkpoint_read(path)
    if verify:
        verify_archive(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            return {name: archive[name].copy() for name in archive.files}
    except CheckpointError:
        raise
    except Exception as error:
        raise CheckpointError(
            f"{os.fspath(path)}: unreadable checkpoint archive: {error}"
        ) from error


class CheckpointManager:
    """Rotating directory of verified checkpoints.

    Archives are named ``<prefix>-<step>.npz`` where ``step`` is any
    monotone counter the caller chooses (the runtime uses "epochs
    completed").  ``keep`` bounds how many are retained; rotation
    deletes oldest-first after each successful save, so a failed save
    never costs an existing checkpoint.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        keep: int = 3,
        prefix: str = "ckpt",
        faults: FaultInjector | None = None,
    ) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        if not re.fullmatch(r"[A-Za-z0-9_.]+", prefix):
            raise ValueError(f"prefix must be alphanumeric, got {prefix!r}")
        self.directory = os.fspath(directory)
        self.keep = keep
        self.prefix = prefix
        self.faults = faults
        #: ``(path, reason)`` for archives skipped by the last recovery walk.
        self.skipped: list[tuple[str, str]] = []
        os.makedirs(self.directory, exist_ok=True)

    # ------------------------------------------------------------------
    # Naming
    # ------------------------------------------------------------------
    def path_for(self, step: int) -> str:
        """Archive path for checkpoint ``step``."""
        return os.path.join(self.directory, f"{self.prefix}-{step:08d}.npz")

    def steps(self) -> list[int]:
        """Steps with an archive on disk, ascending (valid or not)."""
        pattern = re.compile(rf"{re.escape(self.prefix)}-(\d+)\.npz$")
        found = []
        for name in os.listdir(self.directory):
            match = pattern.fullmatch(name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def latest_step(self) -> int | None:
        """Newest step on disk, or ``None`` when the directory is empty."""
        steps = self.steps()
        return steps[-1] if steps else None

    # ------------------------------------------------------------------
    # Save / load
    # ------------------------------------------------------------------
    def save(self, step: int, arrays: Mapping[str, np.ndarray]) -> str:
        """Write checkpoint ``step`` and rotate; returns the path."""
        path = self.path_for(step)
        write_archive(path, arrays, faults=self.faults)
        self._rotate()
        return path

    def load(self, step: int) -> dict[str, np.ndarray]:
        """Load and verify one specific checkpoint."""
        return read_archive(self.path_for(step), faults=self.faults)

    def load_latest_valid(self) -> tuple[int, dict[str, np.ndarray]] | None:
        """Newest checkpoint that passes verification, or ``None``.

        Corrupt or unreadable archives are skipped (recorded in
        :attr:`skipped`) and the walk continues toward older ones —
        recovery degrades gracefully instead of failing on the first
        bad file.
        """
        self.skipped = []
        for step in reversed(self.steps()):
            path = self.path_for(step)
            try:
                return step, read_archive(path, faults=self.faults)
            except (CheckpointError, OSError) as error:
                self.skipped.append((path, str(error)))
        return None

    # ------------------------------------------------------------------
    # Rotation
    # ------------------------------------------------------------------
    def _rotate(self) -> None:
        for step in self.steps()[: -self.keep]:
            path = self.path_for(step)
            for stale in (path, path + CHECKSUM_SUFFIX):
                try:
                    os.unlink(stale)
                except FileNotFoundError:
                    pass
