"""Divergence detection and rollback for training loops.

A single NaN loss, left unchecked, propagates through Adam's moment
buffers into every parameter within a handful of steps and silently
ruins the rest of the run.  :class:`DivergenceGuard` checks the loss
(and the pre-clip gradient norm reported by
:class:`repro.nn.optim.GradientClipper`) for finiteness every step.  On
a violation it rolls model, optimizer and lr-schedule state back to the
last good snapshot, shrinks the learning rate, and lets training
continue — up to a bounded number of retries per snapshot, after which
it raises :class:`DivergenceError` so the failure is loud.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.module import Module
from repro.nn.optim import LinearDecaySchedule, Optimizer


class DivergenceError(RuntimeError):
    """Training diverged and exhausted its rollback retries."""


class DivergenceGuard:
    """Per-step finiteness watchdog with snapshot rollback.

    Parameters
    ----------
    model, optimizer, schedule:
        The live training state to snapshot and roll back.
    max_retries:
        Rollbacks allowed per snapshot before :class:`DivergenceError`.
    lr_backoff:
        Learning-rate multiplier applied per rollback (compounding:
        after the second rollback from one snapshot the lr is
        ``lr_backoff**2`` of the snapshot's).
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        schedule: LinearDecaySchedule | None = None,
        max_retries: int = 3,
        lr_backoff: float = 0.5,
    ) -> None:
        if max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {max_retries}")
        if not 0.0 < lr_backoff < 1.0:
            raise ValueError(f"lr_backoff must be in (0, 1), got {lr_backoff}")
        self.model = model
        self.optimizer = optimizer
        self.schedule = schedule
        self.max_retries = max_retries
        self.lr_backoff = lr_backoff
        self.retries_used = 0  # rollbacks since the current snapshot
        self.total_rollbacks = 0  # across the whole run (for reporting)
        self._snapshot: dict | None = None

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> None:
        """Capture the current state as the rollback point.

        Called by the runtime at every epoch start and after every
        restore; resets the per-snapshot retry budget.
        """
        self._snapshot = {
            "model": self.model.state_dict(),  # state_dict() already copies
            "optim": {
                name: np.array(values, copy=True)
                for name, values in self.optimizer.state_dict().items()
            },
            "sched": self.schedule.state_dict() if self.schedule else None,
        }
        self.retries_used = 0

    @staticmethod
    def is_finite(*values: float) -> bool:
        """True when every value is present and finite (None passes)."""
        return all(value is None or math.isfinite(value) for value in values)

    # ------------------------------------------------------------------
    # Per-step check
    # ------------------------------------------------------------------
    def observe(self, loss_value: float, grad_norm: float | None = None) -> bool:
        """Check one step; returns True when the update may proceed.

        On a non-finite loss or gradient norm, rolls back to the last
        snapshot with a reduced lr and returns False — the caller must
        skip ``optimizer.step()`` for this batch.  Raises
        :class:`DivergenceError` when the retry budget is exhausted or
        no snapshot exists.
        """
        if self.is_finite(loss_value, grad_norm):
            return True
        self.retries_used += 1
        self.total_rollbacks += 1
        if self._snapshot is None:
            raise DivergenceError(
                f"non-finite loss {loss_value!r} before any snapshot was taken"
            )
        if self.retries_used > self.max_retries:
            raise DivergenceError(
                f"training diverged {self.retries_used} times since the last "
                f"good snapshot (budget {self.max_retries}); latest loss "
                f"{loss_value!r}, grad norm {grad_norm!r}"
            )
        self._rollback()
        return False

    def _rollback(self) -> None:
        snap = self._snapshot
        self.model.load_state_dict(snap["model"])
        self.optimizer.load_state_dict(snap["optim"])
        if self.schedule is not None and snap["sched"] is not None:
            self.schedule.load_state_dict(snap["sched"])
        # Compounding backoff: the schedule recomputes optimizer.lr from
        # initial_lr on its next step, so shrink both.
        factor = self.lr_backoff**self.retries_used
        self.optimizer.lr = float(snap["optim"]["__lr__"]) * factor
        if self.schedule is not None:
            self.schedule.initial_lr = float(snap["sched"]["initial_lr"]) * factor
