"""Resumable training: periodic checkpoints, signal handling, recovery.

:class:`TrainingRuntime` is the object the training loops
(:func:`repro.core.trainer.pretrain_contrastive`,
:func:`repro.core.trainer.train_joint`,
:func:`repro.models.training.train_next_item_model`) thread their hooks
through.  It owns:

* **Periodic checkpoints** — model + optimizer + lr-schedule + epoch
  counter + NumPy RNG state + history, packed into one flat archive and
  written through a :class:`~repro.runtime.checkpointing.CheckpointManager`
  every ``checkpoint_every`` epochs.
* **Resume** — :meth:`start` recovers from the newest *valid* archive
  and restores every piece in place, so an interrupted run continues
  bit-for-bit identical to an uninterrupted one (checkpoints capture
  epoch boundaries; a run killed mid-epoch replays that epoch from its
  start with the epoch-start RNG state).
* **Graceful shutdown** — SIGTERM/SIGINT set a flag; at the next step
  boundary the runtime flushes the last epoch-boundary snapshot to disk
  and raises :class:`TrainingInterrupted`.  Injected preemptions
  (:class:`repro.runtime.faults.SimulatedPreemption`) take the same
  path, so tests exercise exactly the production code.
* **Divergence protection** — a
  :class:`~repro.runtime.guards.DivergenceGuard` re-snapshotted at each
  epoch start; see :meth:`allow_update`.

Archive layout (flat ``name -> array``): ``meta/*`` counters,
``model/<param>``, ``optim/<buffer>``, ``sched/<field>``, ``rng/state``
(JSON), ``hist/<list>``, ``extra/<scalar>``, ``aux/<group>/<name>``.
"""

from __future__ import annotations

import json
import signal
import time
from contextlib import contextmanager
from typing import Iterator, MutableMapping, Sequence

import numpy as np

from repro.nn.module import Module
from repro.nn.optim import LinearDecaySchedule, Optimizer
from repro.nn.serialization import CheckpointError
from repro.runtime.checkpointing import CheckpointManager
from repro.runtime.faults import FaultInjector, SimulatedPreemption
from repro.runtime.guards import DivergenceGuard

FORMAT_VERSION = 1
_HANDLED_SIGNALS = (signal.SIGTERM, signal.SIGINT)


class TrainingInterrupted(RuntimeError):
    """Training stopped early on a signal or simulated preemption.

    The final checkpoint was flushed before this was raised; re-running
    with the same configuration and ``resume=True`` continues the run.
    """

    def __init__(self, message: str, epoch: int) -> None:
        super().__init__(message)
        self.epoch = epoch


def capture_rng_states(rngs: Sequence[np.random.Generator]) -> np.ndarray:
    """Serialize generator states to one JSON string array (npz-safe)."""
    return np.asarray(json.dumps([rng.bit_generator.state for rng in rngs]))


def restore_rng_states(
    rngs: Sequence[np.random.Generator], packed: np.ndarray
) -> None:
    """Restore generator states captured by :func:`capture_rng_states`."""
    states = json.loads(str(packed))
    if len(states) != len(rngs):
        raise CheckpointError(
            f"checkpoint holds {len(states)} RNG states, run has {len(rngs)}"
        )
    for rng, state in zip(rngs, states):
        rng.bit_generator.state = state


class TrainingRuntime:
    """Fault-tolerance harness threaded through the training loops.

    Parameters
    ----------
    manager:
        Where checkpoints live (rotation + recovery included).
    checkpoint_every:
        Write a checkpoint every N completed epochs (0 disables the
        periodic writes; interrupt flushes still happen).
    resume:
        Attempt recovery from the newest valid checkpoint in
        :meth:`start`; with False, training always starts fresh.
    guard:
        Enable the per-step :class:`DivergenceGuard`.
    max_retries / lr_backoff:
        Forwarded to the guard.
    faults:
        Optional :class:`FaultInjector` for robustness tests; it is
        also handed to the manager if the manager has none.
    handle_signals:
        Install SIGTERM/SIGINT handlers for the duration of the loop
        (skipped automatically off the main thread).
    obs:
        Optional :class:`repro.obs.RunObserver`; records
        ``checkpoint.write_seconds`` latencies plus ``checkpoint_saved``,
        ``checkpoint_write_failed``, ``divergence_rollback`` and
        ``resume`` events (schema in ``docs/OBSERVABILITY.md``).
    """

    def __init__(
        self,
        manager: CheckpointManager,
        checkpoint_every: int = 1,
        resume: bool = True,
        guard: bool = True,
        max_retries: int = 3,
        lr_backoff: float = 0.5,
        faults: FaultInjector | None = None,
        handle_signals: bool = True,
        obs=None,
    ) -> None:
        if checkpoint_every < 0:
            raise ValueError(f"checkpoint_every must be >= 0, got {checkpoint_every}")
        self.manager = manager
        self.checkpoint_every = checkpoint_every
        self.resume = resume
        self.guard_enabled = guard
        self.max_retries = max_retries
        self.lr_backoff = lr_backoff
        self.faults = faults
        if faults is not None and manager.faults is None:
            manager.faults = faults
        self.handle_signals = handle_signals
        self.obs = obs

        self.guard: DivergenceGuard | None = None
        self.interrupted = False
        self.resumed_from: int | None = None
        #: Periodic checkpoint writes that failed (training continues —
        #: older checkpoints stay usable; inspect/alert on this list).
        self.write_failures: list[str] = []
        self._epoch = 0
        self._global_step = 0
        self._flush_payload: dict[str, np.ndarray] | None = None
        self._last_written: int | None = None

        # Bound by start():
        self._model: Module | None = None
        self._optimizer: Optimizer | None = None
        self._schedule: LinearDecaySchedule | None = None
        self._rngs: list[np.random.Generator] = []
        self._history: dict[str, list[float]] = {}
        self._extras: MutableMapping[str, float] | None = None
        self._aux: MutableMapping[str, dict[str, np.ndarray]] | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(
        self,
        model: Module,
        optimizer: Optimizer,
        schedule: LinearDecaySchedule | None = None,
        rngs: Sequence[np.random.Generator] = (),
        history: dict[str, list[float]] | None = None,
        extras: MutableMapping[str, float] | None = None,
        aux: MutableMapping[str, dict[str, np.ndarray]] | None = None,
    ) -> int:
        """Bind the live training state and attempt resume.

        ``history`` maps names to the loop's live metric lists (mutated
        in place on restore), ``extras`` is a dict of scalar loop state
        (early-stopping counters, ...), ``aux`` holds named groups of
        extra arrays (e.g. the best-validation model state).  Returns
        the epoch to start from: 0 fresh, or the checkpoint's epoch.
        """
        self._model = model
        self._optimizer = optimizer
        self._schedule = schedule
        deduped: list[np.random.Generator] = []
        for rng in rngs:
            if all(rng is not seen for seen in deduped):
                deduped.append(rng)
        self._rngs = deduped
        self._history = dict(history or {})
        self._extras = extras
        self._aux = aux
        if self.guard_enabled:
            self.guard = DivergenceGuard(
                model,
                optimizer,
                schedule,
                max_retries=self.max_retries,
                lr_backoff=self.lr_backoff,
            )

        start_epoch = 0
        if self.resume:
            recovered = self.manager.load_latest_valid()
            if recovered is not None:
                step, payload = recovered
                start_epoch = self._unpack(payload)
                self.resumed_from = step
                if self.obs is not None:
                    self.obs.increment("resumes")
                    self.obs.event(
                        "resume",
                        epoch=start_epoch,
                        checkpoint_step=step,
                        directory=self.manager.directory,
                    )
        self._epoch = start_epoch
        if self.guard is not None:
            self.guard.snapshot()
        # The pre-first-epoch state is the fallback for an interrupt
        # that arrives before the first end_epoch.
        self._flush_payload = self._pack(next_epoch=start_epoch)
        return start_epoch

    def begin_epoch(self, epoch: int) -> None:
        """Snapshot the epoch-start state (rollback + interrupt flush)."""
        self._require_started()
        self._epoch = epoch
        if self.guard is not None:
            self.guard.snapshot()
        self._flush_payload = self._pack(next_epoch=epoch)

    def intercept_loss(self, value: float) -> float:
        """Fault-injection hook: may replace the loss with NaN."""
        if self.faults is not None:
            return self.faults.loss_value(value)
        return value

    def allow_update(self, loss_value: float, grad_norm: float | None = None) -> bool:
        """Guard check; False means rolled back — skip this update."""
        if self.guard is None:
            return True
        allowed = self.guard.observe(loss_value, grad_norm)
        if not allowed and self.obs is not None:
            self.obs.increment("divergence_rollbacks")
            self.obs.event(
                "divergence_rollback",
                epoch=self._epoch,
                global_step=self._global_step,
                loss=loss_value,
                grad_norm=grad_norm,
                total_rollbacks=self.guard.total_rollbacks,
            )
        return allowed

    def after_step(self) -> None:
        """Advance the step counter; honor preemptions and signals."""
        self._global_step += 1
        if self.faults is not None:
            try:
                self.faults.on_step()
            except SimulatedPreemption as preempt:
                self._flush()
                raise TrainingInterrupted(
                    f"{preempt} — checkpoint flushed, resume to continue",
                    epoch=self._epoch,
                ) from preempt
        if self.interrupted:
            self._flush()
            raise TrainingInterrupted(
                "signal received — checkpoint flushed, resume to continue",
                epoch=self._epoch,
            )

    def end_epoch(self, epoch: int) -> None:
        """Record epoch completion; write the periodic checkpoint."""
        self._require_started()
        self._flush_payload = self._pack(next_epoch=epoch + 1)
        if self.checkpoint_every and (epoch + 1) % self.checkpoint_every == 0:
            try:
                self._write(epoch + 1)
            except OSError as error:
                # A failed periodic write must not kill the run: rotation
                # never deletes on failure, so older checkpoints survive.
                self.write_failures.append(str(error))

    def finalize(self) -> None:
        """Flush the final state if the last epoch wasn't checkpointed."""
        if self._flush_payload is not None:
            step = int(self._flush_payload["meta/next_epoch"])
            if self._last_written != step:
                try:
                    self._write(step)
                except OSError as error:
                    self.write_failures.append(str(error))

    @contextmanager
    def session(self) -> Iterator["TrainingRuntime"]:
        """Install signal handlers for the duration of the loop body."""
        installed: list[tuple[signal.Signals, object]] = []
        if self.handle_signals:
            def _on_signal(signum, frame):  # noqa: ARG001 - signal API
                self.interrupted = True

            for signum in _HANDLED_SIGNALS:
                try:
                    installed.append((signum, signal.signal(signum, _on_signal)))
                except ValueError:
                    break  # not the main thread — run without handlers
        try:
            yield self
        finally:
            for signum, previous in installed:
                signal.signal(signum, previous)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def global_step(self) -> int:
        """Updates attempted since this process started the loop."""
        return self._global_step

    # ------------------------------------------------------------------
    # Packing
    # ------------------------------------------------------------------
    def _require_started(self) -> None:
        if self._model is None or self._optimizer is None:
            raise RuntimeError("TrainingRuntime.start() was never called")

    def _pack(self, next_epoch: int) -> dict[str, np.ndarray]:
        payload: dict[str, np.ndarray] = {
            "meta/version": np.asarray(FORMAT_VERSION),
            "meta/next_epoch": np.asarray(next_epoch),
            "meta/global_step": np.asarray(self._global_step),
        }
        for name, values in self._model.state_dict().items():
            payload[f"model/{name}"] = values
        for name, values in self._optimizer.state_dict().items():
            payload[f"optim/{name}"] = np.array(values, copy=True)
        if self._schedule is not None:
            for name, values in self._schedule.state_dict().items():
                payload[f"sched/{name}"] = values
        if self._rngs:
            payload["rng/state"] = capture_rng_states(self._rngs)
        for name, series in self._history.items():
            payload[f"hist/{name}"] = np.asarray(list(series), dtype=np.float64)
        for name, value in (self._extras or {}).items():
            payload[f"extra/{name}"] = np.asarray(float(value))
        for group, arrays in (self._aux or {}).items():
            for name, values in arrays.items():
                payload[f"aux/{group}/{name}"] = np.array(values, copy=True)
        return payload

    def _unpack(self, payload: dict[str, np.ndarray]) -> int:
        def section(prefix: str) -> dict[str, np.ndarray]:
            return {
                name[len(prefix) :]: values
                for name, values in payload.items()
                if name.startswith(prefix)
            }

        where = self.manager.directory
        try:
            self._model.load_state_dict(section("model/"))
            self._optimizer.load_state_dict(section("optim/"))
        except (KeyError, ValueError, IndexError) as error:
            raise CheckpointError(
                f"{where}: checkpoint does not fit this model/optimizer "
                f"(was it written by a different configuration?): {error}"
            ) from error
        if self._schedule is not None:
            sched = section("sched/")
            if sched:
                self._schedule.load_state_dict(sched)
        if self._rngs and "rng/state" in payload:
            restore_rng_states(self._rngs, payload["rng/state"])
        for name, series in self._history.items():
            series.clear()
            series.extend(float(v) for v in payload.get(f"hist/{name}", ()))
        if self._extras is not None:
            for name, value in section("extra/").items():
                self._extras[name] = float(value)
        if self._aux is not None:
            groups: dict[str, dict[str, np.ndarray]] = {}
            for name, values in section("aux/").items():
                group, __, array_name = name.partition("/")
                groups.setdefault(group, {})[array_name] = values
            self._aux.clear()
            self._aux.update(groups)
        self._global_step = int(payload.get("meta/global_step", 0))
        return int(payload["meta/next_epoch"])

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _write(self, step: int) -> None:
        started = time.perf_counter()
        try:
            path = self.manager.save(step, self._flush_payload)
        except OSError as error:
            if self.obs is not None:
                self.obs.increment("checkpoint_write_failures")
                self.obs.event(
                    "checkpoint_write_failed", step=step, error=str(error)
                )
            raise
        seconds = time.perf_counter() - started
        self._last_written = step
        if self.obs is not None:
            self.obs.observe("checkpoint.write_seconds", seconds)
            self.obs.increment("checkpoints_written")
            self.obs.event(
                "checkpoint_saved", step=step, seconds=seconds, path=path
            )

    def _flush(self) -> None:
        """Best-effort final checkpoint of the last epoch boundary."""
        if self._flush_payload is None:
            return
        step = int(self._flush_payload["meta/next_epoch"])
        if self._last_written == step:
            return
        try:
            self._write(step)
        except OSError:
            # An interrupt flush racing a dying disk must not mask the
            # interruption itself; older checkpoints remain usable.
            pass
