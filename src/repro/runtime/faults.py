"""Deterministic, seedable fault injection for robustness testing.

Training robustness claims are only as good as their tests, and real
faults (ENOSPC during a checkpoint write, a preempted worker, a NaN
loss from an fp blow-up) are hard to reproduce on demand.
:class:`FaultInjector` simulates them at well-defined *sites* inside
the runtime:

* ``checkpoint_write`` / ``checkpoint_read`` — an ``OSError`` raised at
  the Nth write/read attempt, as if the disk failed mid-operation.
* ``loss`` — the Nth observed loss value is replaced with NaN, as if
  the optimization diverged.
* ``step`` — :class:`SimulatedPreemption` raised after the Nth training
  step, as if the scheduler sent SIGTERM.

The serving stack (``repro.serve``) adds two sites of its own, hooked
into the engine's encoder micro-batches:

* ``encode`` — an injected ``RuntimeError`` from the Nth encoder
  forward (or at ``encode_failure_rate``), as if the model blew up on
  a bad input.
* ``encode_slow`` — the Nth encode (or every encode while
  ``encode_delay_s`` is set) is delayed, as if the host were
  CPU-starved.  Scheduled slow faults carry their delay in
  :attr:`Fault.payload`.

The rate/delay attributes are plain mutable floats so a chaos driver
(:mod:`repro.serve.chaos`) can open and close fault windows
mid-traffic.  Faults are scheduled deterministically by occurrence
index, or drawn from a seeded generator (``io_failure_rate``,
``encode_failure_rate``), so every test run sees the identical fault
sequence.  The injector also records everything it triggered
(:attr:`FaultInjector.triggered`) for assertions.
"""

from __future__ import annotations

import os
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

import numpy as np

SITES = (
    "checkpoint_write",
    "checkpoint_read",
    "loss",
    "step",
    "encode",
    "encode_slow",
    "worker_kill",
)

#: Exit status an injected ``worker_kill`` dies with — distinctive, so
#: tests and the coordinator's error message can tell an injected death
#: from a crash (1) or a signal (negative exitcode).
WORKER_KILL_EXIT_CODE = 43


class SimulatedPreemption(RuntimeError):
    """An injected preemption — the moral equivalent of SIGTERM.

    The training runtime converts it into a checkpoint flush followed
    by :class:`repro.runtime.resume.TrainingInterrupted`, exactly the
    path a real signal takes.
    """


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: trigger at the ``at``-th visit of ``site``.

    Occurrence indices are 1-based and global across the run (the
    third checkpoint write ever, the tenth loss ever observed, ...).
    ``payload`` carries per-fault data where the site needs it (the
    delay in seconds for ``encode_slow``).
    """

    site: str
    at: int
    payload: float | None = None

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r} (choose from {SITES})")
        if self.at < 1:
            raise ValueError(f"fault occurrence index must be >= 1, got {self.at}")


class FaultInjector:
    """Injects scheduled and/or seeded-random faults at runtime sites.

    Parameters
    ----------
    faults:
        Explicit :class:`Fault` schedule (deterministic).
    io_failure_rate:
        Probability that any checkpoint write/read fails with an
        injected ``OSError``, drawn from a generator seeded with
        ``seed`` — reproducible chaos testing.
    seed:
        Seed for the random-fault generator.
    """

    def __init__(
        self,
        faults: Iterable[Fault] = (),
        io_failure_rate: float = 0.0,
        encode_failure_rate: float = 0.0,
        encode_delay_s: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.faults = list(faults)
        if not 0.0 <= io_failure_rate <= 1.0:
            raise ValueError("io_failure_rate must be in [0, 1]")
        if not 0.0 <= encode_failure_rate <= 1.0:
            raise ValueError("encode_failure_rate must be in [0, 1]")
        if encode_delay_s < 0.0:
            raise ValueError("encode_delay_s must be non-negative")
        self.io_failure_rate = io_failure_rate
        #: Mutable rate/delay knobs — a chaos driver toggles these to
        #: open and close serving fault windows mid-traffic.
        self.encode_failure_rate = encode_failure_rate
        self.encode_delay_s = encode_delay_s
        self._rng = np.random.default_rng(seed)
        self._counts: dict[str, int] = defaultdict(int)
        self.triggered: list[tuple[str, int]] = []

    # ------------------------------------------------------------------
    # Schedule builders (chainable)
    # ------------------------------------------------------------------
    def fail_write(self, at: int) -> "FaultInjector":
        """Schedule an IO error on the ``at``-th checkpoint write."""
        self.faults.append(Fault("checkpoint_write", at))
        return self

    def fail_read(self, at: int) -> "FaultInjector":
        """Schedule an IO error on the ``at``-th checkpoint read."""
        self.faults.append(Fault("checkpoint_read", at))
        return self

    def nan_loss(self, at: int) -> "FaultInjector":
        """Replace the ``at``-th observed loss with NaN."""
        self.faults.append(Fault("loss", at))
        return self

    def preempt(self, at: int) -> "FaultInjector":
        """Simulate preemption right after the ``at``-th training step."""
        self.faults.append(Fault("step", at))
        return self

    def kill_worker(self, at: int, worker: int = 0) -> "FaultInjector":
        """Kill training worker ``worker`` at its ``at``-th parallel step.

        The occurrence index counts *that worker's own* steps (fork
        isolates each worker's injector copy, so the count is
        per-process by construction); the process dies with
        :data:`WORKER_KILL_EXIT_CODE` via ``os._exit`` — no cleanup, no
        goodbye, exactly like an OOM kill.  The coordinator is expected
        to raise :class:`repro.train.parallel.WorkerFailedError`.
        """
        self.faults.append(Fault("worker_kill", at, payload=float(worker)))
        return self

    def fail_encode(self, at: int) -> "FaultInjector":
        """Schedule an injected exception on the ``at``-th encoder forward."""
        self.faults.append(Fault("encode", at))
        return self

    def slow_encode(self, at: int, seconds: float) -> "FaultInjector":
        """Schedule a ``seconds`` delay on the ``at``-th encoder forward."""
        if seconds < 0.0:
            raise ValueError(f"delay must be non-negative, got {seconds}")
        self.faults.append(Fault("encode_slow", at, payload=seconds))
        return self

    # ------------------------------------------------------------------
    # Sites (called by the runtime)
    # ------------------------------------------------------------------
    def _scheduled(self, site: str, count: int) -> Fault | None:
        for fault in self.faults:
            if fault.site == site and fault.at == count:
                return fault
        return None

    def _visit(self, site: str) -> bool:
        self._counts[site] += 1
        count = self._counts[site]
        hit = self._scheduled(site, count) is not None
        if (
            not hit
            and self.io_failure_rate > 0.0
            and site in ("checkpoint_write", "checkpoint_read")
        ):
            hit = bool(self._rng.random() < self.io_failure_rate)
        if not hit and self.encode_failure_rate > 0.0 and site == "encode":
            hit = bool(self._rng.random() < self.encode_failure_rate)
        if hit:
            self.triggered.append((site, count))
        return hit

    def on_checkpoint_write(self, path: str | os.PathLike) -> None:
        """Raise an injected ``OSError`` if this write is scheduled to fail."""
        if self._visit("checkpoint_write"):
            raise OSError(f"injected IO error writing {os.fspath(path)}")

    def on_checkpoint_read(self, path: str | os.PathLike) -> None:
        """Raise an injected ``OSError`` if this read is scheduled to fail."""
        if self._visit("checkpoint_read"):
            raise OSError(f"injected IO error reading {os.fspath(path)}")

    def loss_value(self, value: float) -> float:
        """Pass a loss through; returns NaN when the fault fires."""
        if self._visit("loss"):
            return float("nan")
        return value

    def on_step(self) -> None:
        """Raise :class:`SimulatedPreemption` when the fault fires."""
        if self._visit("step"):
            raise SimulatedPreemption(
                f"injected preemption after step {self._counts['step']}"
            )

    def on_worker_step(self, worker: int) -> None:
        """Die hard when this worker's scheduled kill fires.

        Called by every training worker at each ``step`` command with
        its own id; only a fault whose payload names this worker
        triggers.  ``triggered`` records the hit, but only in the dying
        worker's (forked) injector copy — the coordinator observes the
        death through its :class:`WorkerFailedError` instead.
        """
        self._counts["worker_kill"] += 1
        count = self._counts["worker_kill"]
        for fault in self.faults:
            if (
                fault.site == "worker_kill"
                and fault.at == count
                and int(fault.payload or 0.0) == int(worker)
            ):
                self.triggered.append(("worker_kill", count))
                os._exit(WORKER_KILL_EXIT_CODE)

    def on_encode(self) -> None:
        """Raise an injected ``RuntimeError`` when the encode fault fires."""
        if self._visit("encode"):
            raise RuntimeError(
                f"injected encoder failure at forward {self._counts['encode']}"
            )

    def encode_delay(self) -> float:
        """Seconds the current encoder forward should be delayed.

        Scheduled ``encode_slow`` faults (with their per-fault delay
        payload) win over the ambient ``encode_delay_s`` window knob;
        returns 0.0 when neither applies.
        """
        self._counts["encode_slow"] += 1
        count = self._counts["encode_slow"]
        fault = self._scheduled("encode_slow", count)
        if fault is not None:
            self.triggered.append(("encode_slow", count))
            return float(fault.payload or 0.0)
        if self.encode_delay_s > 0.0:
            self.triggered.append(("encode_slow", count))
            return self.encode_delay_s
        return 0.0

    # ------------------------------------------------------------------
    # File corruption helper (for tests)
    # ------------------------------------------------------------------
    @staticmethod
    def corrupt_file(
        path: str | os.PathLike,
        *,
        truncate_to: int | None = None,
        flip_byte_at: int | None = None,
    ) -> None:
        """Damage a file in place: truncate it and/or flip one byte.

        With no keyword, truncates to half its size — the classic
        "machine died mid-write of a non-atomic checkpoint" shape.
        """
        path = os.fspath(path)
        size = os.path.getsize(path)
        if truncate_to is None and flip_byte_at is None:
            truncate_to = size // 2
        if truncate_to is not None:
            with open(path, "r+b") as handle:
                handle.truncate(truncate_to)
        if flip_byte_at is not None:
            if not 0 <= flip_byte_at < size:
                raise ValueError(f"flip offset {flip_byte_at} outside file of {size} bytes")
            with open(path, "r+b") as handle:
                handle.seek(flip_byte_at)
                byte = handle.read(1)
                handle.seek(flip_byte_at)
                handle.write(bytes([byte[0] ^ 0xFF]))
