"""Scale presets for the experiment harness.

The paper trains d=128 Transformers on a GPU; this reproduction runs a
numpy substrate on CPU, so experiments carry an
:class:`ExperimentScale` that shrinks the dataset and budget together.
Relative comparisons (who wins, by what factor) are stable across
scales because they derive from the generator's structure, not its
size.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs shared by every experiment runner.

    Attributes
    ----------
    dataset_scale:
        Fraction of the full synthetic population to generate.
    dim:
        Model dimensionality (paper: 128).
    max_length:
        Maximum sequence length T (paper: 50).
    epochs:
        Supervised epochs (paper: early stopping).
    pretrain_epochs:
        Contrastive pre-training epochs.
    batch_size:
        Mini-batch size (paper: 256).
    max_eval_users:
        Cap on evaluation users (None = all); keeps full-ranking
        evaluation affordable at larger scales.
    seed:
        Master seed threaded through data, init and sampling.
    """

    dataset_scale: float = 0.05
    dim: int = 48
    max_length: int = 30
    epochs: int = 6
    pretrain_epochs: int = 3
    batch_size: int = 128
    max_eval_users: int | None = 1000
    seed: int = 7

    def with_overrides(self, **kwargs) -> "ExperimentScale":
        """Functional update."""
        return replace(self, **kwargs)


SMOKE_SCALE = ExperimentScale(
    dataset_scale=0.02,
    dim=32,
    max_length=20,
    epochs=2,
    pretrain_epochs=1,
    batch_size=128,
    max_eval_users=300,
)

BENCH_SCALE = ExperimentScale(
    dataset_scale=0.06,
    dim=48,
    max_length=30,
    epochs=8,
    pretrain_epochs=4,
    batch_size=128,
    max_eval_users=1200,
)

FULL_SCALE = ExperimentScale(
    dataset_scale=1.0,
    dim=128,
    max_length=50,
    epochs=50,
    pretrain_epochs=20,
    batch_size=256,
    max_eval_users=None,
)
