"""Table 1 — dataset statistics after preprocessing (paper §4.1.1)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.registry import DATASETS, load_dataset
from repro.experiments.reporting import ResultTable


@dataclass
class Table1Result:
    """Measured statistics (at ``scale``) next to the paper's values."""

    scale: float
    measured: dict[str, dict[str, float]]

    def to_markdown(self) -> str:
        table = ResultTable(
            headers=[
                "Dataset",
                "#users",
                "#items",
                "#actions",
                "avg.length",
                "density",
                "paper #users",
                "paper #items",
                "paper #actions",
            ],
            title=f"Table 1 — dataset statistics (scale={self.scale})",
        )
        for name, stats in self.measured.items():
            spec = DATASETS[name]
            table.add_row(
                name,
                str(int(stats["users"])),
                str(int(stats["items"])),
                str(int(stats["actions"])),
                f"{stats['avg_length']:.1f}",
                f"{stats['density'] * 100:.2f}%",
                str(spec.paper_users),
                str(spec.paper_items),
                str(spec.paper_actions),
            )
        return table.to_markdown()

    def relative_error(self, name: str, column: str) -> float:
        """|measured − paper| / paper for users/items/actions at scale=1."""
        spec = DATASETS[name]
        paper = {
            "users": spec.paper_users,
            "items": spec.paper_items,
            "actions": spec.paper_actions,
        }[column]
        return abs(self.measured[name][column] - paper) / paper


def run_table1(scale: float = 1.0, seed: int = 0) -> Table1Result:
    """Generate every dataset and collect its Table-1 statistics."""
    measured = {}
    for name in DATASETS:
        dataset = load_dataset(name, scale=scale, seed=seed)
        measured[name] = dict(dataset.statistics)
    return Table1Result(scale=scale, measured=measured)
