"""Plain-text / markdown result tables for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


def format_float(value: float, digits: int = 4) -> str:
    """Format a metric the way the paper prints it (e.g. ``0.0513``)."""
    return f"{value:.{digits}f}"


@dataclass
class ResultTable:
    """A simple column-aligned table with markdown rendering."""

    headers: Sequence[str]
    rows: list[Sequence[str]] = field(default_factory=list)
    title: str = ""

    def add_row(self, *cells) -> None:
        """Append a row; non-string cells are formatted automatically."""
        formatted = [
            format_float(cell) if isinstance(cell, float) else str(cell)
            for cell in cells
        ]
        if len(formatted) != len(self.headers):
            raise ValueError(
                f"row has {len(formatted)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(formatted)

    def to_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table."""
        widths = [
            max(len(str(h)), *(len(row[i]) for row in self.rows), 3)
            if self.rows
            else max(len(str(h)), 3)
            for i, h in enumerate(self.headers)
        ]
        lines = []
        if self.title:
            lines.append(f"### {self.title}")
            lines.append("")
        header = "| " + " | ".join(
            str(h).ljust(w) for h, w in zip(self.headers, widths)
        ) + " |"
        rule = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
        lines.append(header)
        lines.append(rule)
        for row in self.rows:
            lines.append(
                "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_markdown()


def improvement_pct(candidate: float, baseline: float) -> float:
    """Relative improvement in percent (paper's "Improv." columns)."""
    if baseline == 0:
        return float("inf") if candidate > 0 else 0.0
    return 100.0 * (candidate - baseline) / baseline
