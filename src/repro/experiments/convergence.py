"""E-A4 (extension) — convergence-speed study.

The paper observes that pre-training "can warm-up the following
procedure": SASRec-BPR "converges more quickly at the fine-tuning step
than SASRec".  This experiment measures validation HR@10 after every
fine-tuning epoch for three starts — cold (SASRec), BPR-warm
(SASRec-BPR) and contrastive-warm (CL4SRec) — and reports how many
epochs each needs to reach a fixed performance bar.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.representation import ConvergenceTracker
from repro.core.trainer import ContrastivePretrainConfig, pretrain_contrastive
from repro.data.registry import load_dataset
from repro.eval.evaluator import Evaluator
from repro.experiments.config import ExperimentScale
from repro.experiments.factory import build_model
from repro.experiments.reporting import ResultTable


@dataclass
class ConvergenceResult:
    """Per-epoch validation curves and epochs-to-bar for each start."""

    dataset: str
    scale: ExperimentScale
    bar: float
    tracker: ConvergenceTracker = field(default_factory=ConvergenceTracker)

    def epochs_to_bar(self, label: str) -> int | None:
        return self.tracker.epochs_to_reach(label, self.bar)

    def to_markdown(self) -> str:
        labels = list(self.tracker.curves)
        epochs = max(len(curve) for curve in self.tracker.curves.values())
        table = ResultTable(
            headers=["Start"]
            + [f"ep{e}" for e in range(1, epochs + 1)]
            + [f"epochs to HR@10≥{self.bar:.2f}"],
            title=f"Convergence study — {self.dataset}",
        )
        for label in labels:
            curve = self.tracker.curves[label]
            reached = self.epochs_to_bar(label)
            table.add_row(
                label,
                *[f"{v:.4f}" for v in curve],
                *[""] * (epochs - len(curve)),
                str(reached) if reached is not None else "never",
            )
        return table.to_markdown()


def run_convergence(
    dataset_name: str = "beauty",
    scale: ExperimentScale | None = None,
    bar_fraction: float = 0.9,
) -> ConvergenceResult:
    """Measure fine-tuning convergence for cold vs warm starts.

    The bar is set to ``bar_fraction`` of the cold start's final
    validation HR@10, so the question becomes: how much sooner do the
    warm starts cross the level the baseline only reaches at the end?
    """
    scale = scale if scale is not None else ExperimentScale()
    dataset = load_dataset(dataset_name, scale=scale.dataset_scale, seed=scale.seed)
    evaluator = Evaluator(dataset, split="valid")
    tracker = ConvergenceTracker()

    def epoch_curve(model, label: str, epochs: int) -> list[float]:
        curve = []
        for __ in range(epochs):
            model.fit(dataset, epochs=1, **(
                {"skip_pretrain": True} if hasattr(model, "pretrain_history") else {}
            ))
            score = evaluator.evaluate(model, max_users=scale.max_eval_users)[
                "HR@10"
            ]
            curve.append(score)
            tracker.record(label, score)
        return curve

    # Cold start: plain SASRec.
    cold = build_model("SASRec", dataset, scale)
    cold_curve = epoch_curve(cold, "SASRec (cold)", scale.epochs)

    # BPR warm start.
    warm_bpr = build_model("SASRec-BPR", dataset, scale)
    warm_bpr.pretrain(dataset)
    epoch_curve(warm_bpr, "SASRec-BPR (warm)", scale.epochs)

    # Contrastive warm start: pre-train first, then fine-tune epoch by
    # epoch with the contrastive stage skipped.
    warm_cl = build_model(
        "CL4SRec", dataset, scale, augmentations=("crop", "mask", "reorder")
    )
    pretrain_contrastive(
        warm_cl,
        dataset,
        ContrastivePretrainConfig(
            epochs=scale.pretrain_epochs,
            batch_size=scale.batch_size,
            max_length=scale.max_length,
            seed=scale.seed,
        ),
    )
    epoch_curve(warm_cl, "CL4SRec (contrastive warm)", scale.epochs)

    bar = bar_fraction * cold_curve[-1]
    return ConvergenceResult(
        dataset=dataset_name, scale=scale, bar=float(bar), tracker=tracker
    )
