"""Figure 5 — composition of augmentations (RQ3).

Compares the three single operators (at their best rates) against the
three pairwise compositions, where the pair sampler applies two
*different* operators to the same sequence.  The paper's finding:
compositions do **not** outperform their best single component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.data.registry import load_dataset
from repro.eval.evaluator import Evaluator
from repro.experiments.config import ExperimentScale
from repro.experiments.factory import build_model
from repro.experiments.reporting import ResultTable

OPERATORS = ("crop", "mask", "reorder")


@dataclass
class Figure5Result:
    """results[label] -> metrics; single-op labels and "a+b" pairs."""

    dataset: str
    scale: ExperimentScale
    results: dict[str, dict[str, float]] = field(default_factory=dict)

    def best_single(self, metric: str = "HR@10") -> tuple[str, float]:
        singles = {k: v for k, v in self.results.items() if "+" not in k}
        best = max(singles, key=lambda k: singles[k][metric])
        return best, singles[best][metric]

    def best_composite(self, metric: str = "HR@10") -> tuple[str, float]:
        pairs = {k: v for k, v in self.results.items() if "+" in k}
        best = max(pairs, key=lambda k: pairs[k][metric])
        return best, pairs[best][metric]

    def to_markdown(self) -> str:
        table = ResultTable(
            headers=["Augmentation", "HR@10", "NDCG@10"],
            title=f"Figure 5 — composition study, {self.dataset}",
        )
        for label, metrics in self.results.items():
            table.add_row(label, metrics["HR@10"], metrics["NDCG@10"])
        return table.to_markdown()


def run_figure5(
    dataset_name: str = "beauty",
    best_rates: dict[str, float] | None = None,
    scale: ExperimentScale | None = None,
) -> Figure5Result:
    """Evaluate singles and pairwise compositions at their best rates.

    ``best_rates`` maps operator name → proportion rate; defaults to
    0.5 for every operator (run Figure 4 first to find true optima).
    """
    scale = scale if scale is not None else ExperimentScale()
    if best_rates is None:
        best_rates = {op: 0.5 for op in OPERATORS}
    dataset = load_dataset(dataset_name, scale=scale.dataset_scale, seed=scale.seed)
    evaluator = Evaluator(dataset, split="test")
    result = Figure5Result(dataset=dataset_name, scale=scale)

    for operator in OPERATORS:
        model = build_model(
            "CL4SRec",
            dataset,
            scale,
            augmentations=(operator,),
            rates=best_rates[operator],
        )
        model.fit(dataset)
        result.results[operator] = evaluator.evaluate(
            model, max_users=scale.max_eval_users
        ).metrics

    for first, second in combinations(OPERATORS, 2):
        model = build_model(
            "CL4SRec",
            dataset,
            scale,
            augmentations=(first, second),
            rates=[best_rates[first], best_rates[second]],
            distinct_pair=True,
        )
        model.fit(dataset)
        result.results[f"{first}+{second}"] = evaluator.evaluate(
            model, max_users=scale.max_eval_users
        ).metrics
    return result
