"""Persist experiment runs as JSON manifests.

A lightweight lab notebook: every tracked run records its experiment
id, parameters, metrics, and wall-clock duration to one JSON file in a
directory, and :class:`RunRegistry` loads them back for comparison —
enough to answer "what did I run last week and with which settings"
without a heavyweight tracking service.

Manifest writes are atomic (temp file + fsync + ``os.replace``), so a
crash mid-record never leaves a truncated JSON file that poisons later
:meth:`RunRegistry.runs` scans.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Iterator

from repro.nn.serialization import atomic_write_bytes


@dataclass
class RunRecord:
    """One completed experiment run."""

    experiment: str
    params: dict[str, Any]
    metrics: dict[str, float]
    duration_seconds: float
    run_id: str = ""
    notes: str = ""

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "RunRecord":
        data = json.loads(payload)
        unknown = set(data) - {f.name for f in cls.__dataclass_fields__.values()}
        if unknown:
            raise ValueError(f"unknown run-record fields: {sorted(unknown)}")
        return cls(**data)


class RunRegistry:
    """Directory of JSON run manifests."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._counter = len(list(self._manifest_paths()))

    def _manifest_paths(self) -> Iterator[str]:
        for name in sorted(os.listdir(self.directory)):
            if name.endswith(".json"):
                yield os.path.join(self.directory, name)

    def record(
        self,
        experiment: str,
        params: dict[str, Any],
        metrics: dict[str, float],
        duration_seconds: float,
        notes: str = "",
    ) -> RunRecord:
        """Persist one run and return its record (with assigned id)."""
        self._counter += 1
        run_id = f"{experiment}-{self._counter:04d}"
        record = RunRecord(
            experiment=experiment,
            params=dict(params),
            metrics=dict(metrics),
            duration_seconds=float(duration_seconds),
            run_id=run_id,
            notes=notes,
        )
        path = os.path.join(self.directory, f"{run_id}.json")
        atomic_write_bytes(path, (record.to_json() + "\n").encode("utf-8"))
        return record

    def runs(self, experiment: str | None = None) -> list[RunRecord]:
        """Load all (or one experiment's) runs, oldest first."""
        records = []
        for path in self._manifest_paths():
            with open(path) as handle:
                record = RunRecord.from_json(handle.read())
            if experiment is None or record.experiment == experiment:
                records.append(record)
        return records

    def best(self, experiment: str, metric: str) -> RunRecord:
        """The run with the highest ``metric`` for ``experiment``."""
        candidates = [
            r for r in self.runs(experiment) if metric in r.metrics
        ]
        if not candidates:
            raise LookupError(
                f"no runs of '{experiment}' carry metric '{metric}'"
            )
        return max(candidates, key=lambda r: r.metrics[metric])


class TrackedRun:
    """Context manager that times a run and records it on success.

    >>> registry = RunRegistry(tmpdir)                  # doctest: +SKIP
    >>> with TrackedRun(registry, "table2", {"scale": 0.05}) as run:
    ...     run.metrics = {"HR@10": 0.41}               # doctest: +SKIP
    """

    def __init__(
        self,
        registry: RunRegistry,
        experiment: str,
        params: dict[str, Any],
        notes: str = "",
    ) -> None:
        self.registry = registry
        self.experiment = experiment
        self.params = params
        self.notes = notes
        self.metrics: dict[str, float] = {}
        self.record: RunRecord | None = None
        self._started = 0.0

    def __enter__(self) -> "TrackedRun":
        self._started = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            return  # failed runs are not recorded
        if not self.metrics:
            raise ValueError(
                "TrackedRun exited without metrics; set run.metrics first"
            )
        self.record = self.registry.record(
            self.experiment,
            self.params,
            self.metrics,
            duration_seconds=time.monotonic() - self._started,
            notes=self.notes,
        )
