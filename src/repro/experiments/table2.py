"""Table 2 — overall performance comparison (RQ1).

Trains every requested method on every requested dataset and reports
full-ranking HR@{5,10,20} and NDCG@{5,10,20}, plus the paper's two
improvement columns (CL4SRec over SASRec and over SASRec-BPR).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.registry import load_dataset
from repro.eval.evaluator import Evaluator
from repro.experiments.config import ExperimentScale
from repro.experiments.factory import MODEL_NAMES, build_model
from repro.experiments.reporting import ResultTable, improvement_pct

METRIC_COLUMNS = ("HR@5", "HR@10", "HR@20", "NDCG@5", "NDCG@10", "NDCG@20")


@dataclass
class Table2Result:
    """metrics[dataset][model][metric] plus the evaluation scale."""

    scale: ExperimentScale
    metrics: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)

    def improvement_over(
        self, dataset: str, baseline: str, metric: str, candidate: str = "CL4SRec"
    ) -> float:
        """Paper's Improv. column: % gain of ``candidate`` over ``baseline``."""
        return improvement_pct(
            self.metrics[dataset][candidate][metric],
            self.metrics[dataset][baseline][metric],
        )

    def to_markdown(self) -> str:
        blocks = []
        for dataset, per_model in self.metrics.items():
            models = list(per_model)
            table = ResultTable(
                headers=["Metric"] + models + ["Improv.#1", "Improv.#2"],
                title=f"Table 2 — {dataset}",
            )
            for metric in METRIC_COLUMNS:
                row = [metric] + [per_model[m][metric] for m in models]
                if "CL4SRec" in per_model and "SASRec" in per_model:
                    row.append(
                        f"{self.improvement_over(dataset, 'SASRec', metric):+.2f}%"
                    )
                else:
                    row.append("n/a")
                if "CL4SRec" in per_model and "SASRec-BPR" in per_model:
                    row.append(
                        f"{self.improvement_over(dataset, 'SASRec-BPR', metric):+.2f}%"
                    )
                else:
                    row.append("n/a")
                table.add_row(*row)
            blocks.append(table.to_markdown())
        return "\n\n".join(blocks)


def run_table2(
    datasets: tuple[str, ...] = ("beauty", "sports", "toys", "yelp"),
    models: tuple[str, ...] = MODEL_NAMES,
    scale: ExperimentScale | None = None,
    augmentations: tuple[str, ...] = ("crop", "mask", "reorder"),
    rates: list[float] | float = 0.5,
) -> Table2Result:
    """Train + evaluate every (dataset, model) cell of Table 2."""
    scale = scale if scale is not None else ExperimentScale()
    result = Table2Result(scale=scale)
    for dataset_name in datasets:
        dataset = load_dataset(dataset_name, scale=scale.dataset_scale, seed=scale.seed)
        evaluator = Evaluator(dataset, split="test")
        result.metrics[dataset_name] = {}
        for model_name in models:
            model = build_model(
                model_name, dataset, scale, augmentations=augmentations, rates=rates
            )
            model.fit(dataset)
            evaluation = evaluator.evaluate(model, max_users=scale.max_eval_users)
            result.metrics[dataset_name][model_name] = evaluation.metrics
    return result
