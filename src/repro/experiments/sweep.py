"""Grid search with validation-split model selection.

The paper reports every baseline "under its optimal settings" and
sweeps CL4SRec's augmentation proportions on a grid — this utility is
the machinery for doing that honestly: train one model per grid point,
select on the *validation* split, and only then report the winner's
*test* metrics (never select on test).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.data.preprocessing import SequenceDataset
from repro.eval.evaluator import Evaluator
from repro.experiments.reporting import ResultTable


@dataclass
class SweepPoint:
    """One evaluated grid point."""

    params: dict[str, Any]
    valid_metrics: dict[str, float]
    test_metrics: dict[str, float] | None = None


@dataclass
class SweepResult:
    """All grid points plus the validation-selected winner."""

    metric: str
    points: list[SweepPoint] = field(default_factory=list)

    @property
    def best(self) -> SweepPoint:
        if not self.points:
            raise ValueError("sweep produced no points")
        return max(self.points, key=lambda p: p.valid_metrics[self.metric])

    def to_markdown(self) -> str:
        if not self.points:
            return "(empty sweep)"
        param_names = sorted(self.points[0].params)
        headers = param_names + [f"valid {self.metric}", f"test {self.metric}"]
        table = ResultTable(headers=headers, title="Hyper-parameter sweep")
        best = self.best
        for point in self.points:
            marker = " *" if point is best else ""
            test_value = (
                f"{point.test_metrics[self.metric]:.4f}"
                if point.test_metrics
                else "-"
            )
            table.add_row(
                *[str(point.params[name]) for name in param_names],
                f"{point.valid_metrics[self.metric]:.4f}{marker}",
                test_value,
            )
        return table.to_markdown()


def grid(**axes: Sequence) -> list[dict[str, Any]]:
    """Cartesian product of named axes as a list of param dicts.

    >>> grid(rate=[0.1, 0.5], op=["crop"])
    [{'rate': 0.1, 'op': 'crop'}, {'rate': 0.5, 'op': 'crop'}]
    """
    names = list(axes)
    combos = itertools.product(*(axes[name] for name in names))
    return [dict(zip(names, combo)) for combo in combos]


def run_sweep(
    build_and_fit: Callable[[Mapping[str, Any]], Any],
    dataset: SequenceDataset,
    param_grid: Sequence[Mapping[str, Any]],
    metric: str = "HR@10",
    max_eval_users: int | None = 1000,
    evaluate_test_for_best: bool = True,
) -> SweepResult:
    """Train one model per grid point and select on validation.

    Parameters
    ----------
    build_and_fit:
        Callable receiving one param dict, returning a *fitted* model
        exposing ``score_users``.
    dataset:
        Dataset with leave-one-out splits.
    param_grid:
        Parameter dicts (see :func:`grid`).
    metric:
        Selection metric, evaluated on the validation split.
    evaluate_test_for_best:
        When true (default), only the winner gets test metrics —
        matching the honest protocol of selecting before looking.
    """
    if not param_grid:
        raise ValueError("param_grid is empty")
    valid_evaluator = Evaluator(dataset, split="valid")
    result = SweepResult(metric=metric)
    for params in param_grid:
        model = build_and_fit(dict(params))
        valid = valid_evaluator.evaluate(model, max_users=max_eval_users)
        point = SweepPoint(params=dict(params), valid_metrics=valid.metrics)
        point._model = model  # type: ignore[attr-defined]
        result.points.append(point)

    if evaluate_test_for_best:
        best = result.best
        test_evaluator = Evaluator(dataset, split="test")
        best.test_metrics = test_evaluator.evaluate(
            best._model, max_users=max_eval_users  # type: ignore[attr-defined]
        ).metrics
    for point in result.points:
        del point._model  # type: ignore[attr-defined]
    return result
