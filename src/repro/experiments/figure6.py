"""Figure 6 — impact of the amount of training data (RQ4).

CL4SRec (item mask, γ=0.5, per the paper) versus SASRec at
{20, 40, 60, 80, 100}% of the training users.  The paper's findings:
performance degrades with less data, and CL4SRec stays above SASRec at
every fraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.registry import load_dataset
from repro.eval.evaluator import Evaluator
from repro.experiments.config import ExperimentScale
from repro.experiments.factory import build_model
from repro.experiments.reporting import ResultTable

PAPER_FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)


@dataclass
class Figure6Result:
    """series[model][fraction] -> metrics (HR@10, NDCG@10, ...)."""

    dataset: str
    scale: ExperimentScale
    fractions: tuple[float, ...]
    series: dict[str, dict[float, dict[str, float]]] = field(default_factory=dict)

    def wins_at_every_fraction(self, metric: str = "NDCG@10") -> bool:
        """Does CL4SRec beat SASRec at every training fraction?"""
        cl = self.series["CL4SRec"]
        sas = self.series["SASRec"]
        return all(cl[f][metric] > sas[f][metric] for f in self.fractions)

    def degradation(self, model: str, metric: str = "NDCG@10") -> float:
        """Relative drop from 100% to the smallest fraction, in percent."""
        full = self.series[model][max(self.fractions)][metric]
        small = self.series[model][min(self.fractions)][metric]
        if small == 0:
            return float("inf")
        return 100.0 * (full - small) / small

    def to_markdown(self) -> str:
        blocks = []
        for metric in ("HR@10", "NDCG@10"):
            table = ResultTable(
                headers=["Model"] + [f"{int(f * 100)}%" for f in self.fractions],
                title=f"Figure 6 — {self.dataset}, {metric}",
            )
            for model, points in self.series.items():
                table.add_row(model, *[points[f][metric] for f in self.fractions])
            blocks.append(table.to_markdown())
        return "\n\n".join(blocks)


def run_figure6(
    dataset_name: str = "beauty",
    fractions: tuple[float, ...] = PAPER_FRACTIONS,
    scale: ExperimentScale | None = None,
    gamma: float = 0.5,
) -> Figure6Result:
    """Train SASRec and CL4SRec(mask, γ) on shrinking training sets.

    Evaluation always uses the users present in the subsample, so each
    point is a self-consistent leave-one-out protocol; the comparison
    between models at the same fraction is what the paper plots.
    """
    scale = scale if scale is not None else ExperimentScale()
    full = load_dataset(dataset_name, scale=scale.dataset_scale, seed=scale.seed)
    result = Figure6Result(
        dataset=dataset_name, scale=scale, fractions=fractions
    )
    result.series = {"SASRec": {}, "CL4SRec": {}}

    # Training shrinks with the fraction, but evaluation always runs on
    # the FULL user population: SASRec-family models have no per-user
    # parameters (they encode the history), so users outside the
    # training subsample are still scoreable.  A fixed test population
    # makes the cross-fraction curves comparable, as in the paper.
    evaluator = Evaluator(full, split="test")
    for fraction in fractions:
        subsampled = full.subsample_users(fraction, seed=scale.seed)
        for model_name in ("SASRec", "CL4SRec"):
            model = build_model(
                model_name,
                subsampled,
                scale,
                augmentations=("mask",),
                rates=gamma,
            )
            model.fit(subsampled)
            result.series[model_name][fraction] = evaluator.evaluate(
                model, max_users=scale.max_eval_users
            ).metrics
    return result
