"""Aggregate regenerated artifacts into one report.

The benchmarks save each regenerated table/figure as markdown under
``benchmarks/results/``; :func:`build_report` stitches them into a
single document (the repository ships the per-experiment commentary in
EXPERIMENTS.md — this aggregator is for the raw regenerated artifacts).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

# Canonical ordering of artifacts in the combined report.
SECTION_ORDER = (
    "table1",
    "dataset_fidelity",
    "table2",
    "figure4_beauty",
    "figure4_yelp",
    "figure5_beauty",
    "figure5_yelp",
    "figure6_beauty",
    "figure6_yelp",
    "ablation_projection",
    "ablation_temperature",
    "ablation_joint_vs_pretrain",
    "ablation_convergence",
    "ablation_negatives",
    "extension_baselines",
    "serving_throughput",
    "obs_overhead",
    "pipeline_throughput",
    "pipeline_prefetch_overlap",
    "compute_core",
    "resilience",
    "retrieval",
    "serving_scale",
    "train_parallel",
)


@dataclass
class Report:
    """A stitched report plus bookkeeping about missing artifacts."""

    markdown: str
    included: list[str]
    missing: list[str]

    def write(self, path: str | os.PathLike) -> None:
        with open(path, "w") as handle:
            handle.write(self.markdown + "\n")


def build_report(
    results_dir: str | os.PathLike,
    title: str = "CL4SRec reproduction — regenerated artifacts",
) -> Report:
    """Combine all saved artifacts from ``results_dir``.

    Artifacts named in :data:`SECTION_ORDER` appear first, in order;
    any extra ``.md`` files in the directory are appended
    alphabetically, so new experiments are never silently dropped.
    """
    results_dir = str(results_dir)
    if not os.path.isdir(results_dir):
        raise FileNotFoundError(f"no results directory at {results_dir}")
    available = {
        name[: -len(".md")]
        for name in os.listdir(results_dir)
        if name.endswith(".md")
    }
    ordered = [name for name in SECTION_ORDER if name in available]
    extras = sorted(available - set(SECTION_ORDER))
    included = ordered + extras
    missing = [name for name in SECTION_ORDER if name not in available]

    parts = [f"# {title}", ""]
    for name in included:
        with open(os.path.join(results_dir, f"{name}.md")) as handle:
            parts.append(handle.read().strip())
        parts.append("")
    if missing:
        parts.append("---")
        parts.append(
            "Missing artifacts (benchmarks not yet run): " + ", ".join(missing)
        )
    return Report(markdown="\n".join(parts).strip(), included=included, missing=missing)
