"""Figure 4 — augmentation type × proportion sweep (RQ2).

One augmentation operator at a time, proportion rate swept over the
paper's grid {0.1, 0.3, 0.5, 0.7, 0.9}, reporting HR@10 and NDCG@10
against a SASRec dashed-line baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.registry import load_dataset
from repro.eval.evaluator import Evaluator
from repro.experiments.config import ExperimentScale
from repro.experiments.factory import build_model
from repro.experiments.reporting import ResultTable

PAPER_RATE_GRID = (0.1, 0.3, 0.5, 0.7, 0.9)
OPERATORS = ("crop", "mask", "reorder")


@dataclass
class Figure4Result:
    """series[operator][rate] -> {HR@10, NDCG@10}; baseline = SASRec."""

    dataset: str
    scale: ExperimentScale
    rates: tuple[float, ...]
    series: dict[str, dict[float, dict[str, float]]] = field(default_factory=dict)
    baseline: dict[str, float] = field(default_factory=dict)

    def best_rate(self, operator: str, metric: str = "HR@10") -> float:
        """Rate with the highest metric for ``operator``."""
        points = self.series[operator]
        return max(points, key=lambda r: points[r][metric])

    def beats_baseline_fraction(self, operator: str, metric: str = "HR@10") -> float:
        """Fraction of swept rates where the operator beats SASRec."""
        points = self.series[operator]
        wins = sum(points[r][metric] > self.baseline[metric] for r in points)
        return wins / len(points)

    def to_markdown(self) -> str:
        blocks = []
        for metric in ("HR@10", "NDCG@10"):
            table = ResultTable(
                headers=["Operator"] + [f"rate={r}" for r in self.rates] + ["SASRec"],
                title=f"Figure 4 — {self.dataset}, {metric}",
            )
            for operator, points in self.series.items():
                table.add_row(
                    operator,
                    *[points[r][metric] for r in self.rates],
                    self.baseline[metric],
                )
            blocks.append(table.to_markdown())
        return "\n\n".join(blocks)


def run_figure4(
    dataset_name: str = "beauty",
    operators: tuple[str, ...] = OPERATORS,
    rates: tuple[float, ...] = PAPER_RATE_GRID,
    scale: ExperimentScale | None = None,
) -> Figure4Result:
    """Sweep each operator alone over the proportion grid."""
    scale = scale if scale is not None else ExperimentScale()
    dataset = load_dataset(dataset_name, scale=scale.dataset_scale, seed=scale.seed)
    evaluator = Evaluator(dataset, split="test")

    baseline_model = build_model("SASRec", dataset, scale)
    baseline_model.fit(dataset)
    baseline = evaluator.evaluate(
        baseline_model, max_users=scale.max_eval_users
    ).metrics

    result = Figure4Result(
        dataset=dataset_name, scale=scale, rates=rates, baseline=baseline
    )
    for operator in operators:
        result.series[operator] = {}
        for rate in rates:
            model = build_model(
                "CL4SRec", dataset, scale, augmentations=(operator,), rates=rate
            )
            model.fit(dataset)
            evaluation = evaluator.evaluate(model, max_users=scale.max_eval_users)
            result.series[operator][rate] = evaluation.metrics
    return result
