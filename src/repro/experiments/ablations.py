"""Extension ablations on the design choices DESIGN.md calls out.

* **E-A1 projection head** (§3.2.3): the paper claims the projection
  removes information useful downstream and must be discarded at
  fine-tuning.  We compare scoring through the raw encoder output
  against scoring through the (pre-trained) projection.
* **E-A2 temperature** (§3.2.4): sweep the NT-Xent τ.
* **E-A3 training regime** (§3.5): the preprint's two-stage
  pre-train→fine-tune pipeline versus the camera-ready's joint
  multi-task objective ``L_rec + λ·L_cl``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.registry import load_dataset
from repro.eval.evaluator import Evaluator
from repro.experiments.config import ExperimentScale
from repro.experiments.factory import build_model
from repro.experiments.reporting import ResultTable


@dataclass
class AblationResult:
    """variants[label] -> metrics for one ablation axis."""

    name: str
    dataset: str
    scale: ExperimentScale
    variants: dict[str, dict[str, float]] = field(default_factory=dict)

    def best(self, metric: str = "HR@10") -> tuple[str, float]:
        label = max(self.variants, key=lambda k: self.variants[k][metric])
        return label, self.variants[label][metric]

    def to_markdown(self) -> str:
        table = ResultTable(
            headers=["Variant", "HR@10", "NDCG@10"],
            title=f"Ablation: {self.name} ({self.dataset})",
        )
        for label, metrics in self.variants.items():
            table.add_row(label, metrics["HR@10"], metrics["NDCG@10"])
        return table.to_markdown()


def run_projection_ablation(
    dataset_name: str = "beauty",
    scale: ExperimentScale | None = None,
) -> AblationResult:
    """Score through the encoder (paper) vs through the projection head."""
    scale = scale if scale is not None else ExperimentScale()
    dataset = load_dataset(dataset_name, scale=scale.dataset_scale, seed=scale.seed)
    evaluator = Evaluator(dataset, split="test")

    model = build_model("CL4SRec", dataset, scale, augmentations=("mask",), rates=0.5)
    model.fit(dataset)
    result = AblationResult(
        name="projection head at inference", dataset=dataset_name, scale=scale
    )
    result.variants["discard g(·) (paper)"] = evaluator.evaluate(
        model, max_users=scale.max_eval_users
    ).metrics

    class _ProjectedScorer:
        def score_items(self, ds, users, items=None, split="test"):
            scores = model.score_users_projected(ds, users, split=split)
            if items is None:
                return scores
            return scores[:, np.asarray(items, dtype=np.int64)]

    result.variants["keep g(·)"] = evaluator.evaluate(
        _ProjectedScorer(), max_users=scale.max_eval_users
    ).metrics
    return result


def run_temperature_ablation(
    dataset_name: str = "beauty",
    temperatures: tuple[float, ...] = (0.1, 0.5, 1.0, 2.0),
    scale: ExperimentScale | None = None,
) -> AblationResult:
    """Sweep the NT-Xent softmax temperature τ."""
    scale = scale if scale is not None else ExperimentScale()
    dataset = load_dataset(dataset_name, scale=scale.dataset_scale, seed=scale.seed)
    evaluator = Evaluator(dataset, split="test")
    result = AblationResult(
        name="NT-Xent temperature", dataset=dataset_name, scale=scale
    )
    for tau in temperatures:
        model = build_model(
            "CL4SRec",
            dataset,
            scale,
            augmentations=("mask",),
            rates=0.5,
            temperature=tau,
        )
        model.fit(dataset)
        result.variants[f"tau={tau}"] = evaluator.evaluate(
            model, max_users=scale.max_eval_users
        ).metrics
    return result


def run_joint_vs_pretrain(
    dataset_name: str = "beauty",
    scale: ExperimentScale | None = None,
    cl_weight: float = 0.1,
) -> AblationResult:
    """Two-stage (preprint) vs joint multi-task (camera-ready) training."""
    scale = scale if scale is not None else ExperimentScale()
    dataset = load_dataset(dataset_name, scale=scale.dataset_scale, seed=scale.seed)
    evaluator = Evaluator(dataset, split="test")
    result = AblationResult(
        name="pre-train→fine-tune vs joint", dataset=dataset_name, scale=scale
    )
    for mode in ("pretrain_finetune", "joint"):
        model = build_model(
            "CL4SRec",
            dataset,
            scale,
            augmentations=("mask",),
            rates=0.5,
            mode=mode,
            cl_weight=cl_weight,
        )
        model.fit(dataset)
        result.variants[mode] = evaluator.evaluate(
            model, max_users=scale.max_eval_users
        ).metrics
    return result
