"""Build any of the paper's seven methods from a name + scale preset."""

from __future__ import annotations

from typing import Sequence

from repro.core.cl4srec import CL4SRec, CL4SRecConfig
from repro.core.momentum import MoCoCL4SRec
from repro.core.trainer import ContrastivePretrainConfig, JointTrainConfig
from repro.data.preprocessing import SequenceDataset
from repro.experiments.config import ExperimentScale
from repro.models.bert4rec import BERT4Rec, BERT4RecConfig
from repro.models.bprmf import BPRMF, BPRMFConfig
from repro.models.caser import Caser, CaserConfig
from repro.models.fpmc import FPMC, FPMCConfig
from repro.models.gru4rec import GRU4Rec, GRU4RecConfig
from repro.models.ncf import NCF, NCFConfig
from repro.models.pop import Pop
from repro.models.sasrec import SASRec, SASRecConfig
from repro.models.sasrec_bpr import SASRecBPR
from repro.models.srgnn import SRGNN, SRGNNConfig
from repro.models.training import TrainConfig

MODEL_NAMES = (
    "Pop",
    "BPR-MF",
    "NCF",
    "GRU4Rec",
    "SASRec",
    "SASRec-BPR",
    "CL4SRec",
)

# Extension baselines beyond the paper's Table 2.
EXTENSION_MODEL_NAMES = ("FPMC", "Caser", "BERT4Rec", "SR-GNN", "MoCo-CL4SRec")


def _train_config(scale: ExperimentScale) -> TrainConfig:
    return TrainConfig(
        epochs=scale.epochs,
        batch_size=scale.batch_size,
        max_length=scale.max_length,
        seed=scale.seed,
    )


def _sasrec_config(scale: ExperimentScale) -> SASRecConfig:
    return SASRecConfig(dim=scale.dim, train=_train_config(scale))


def build_model(
    name: str,
    dataset: SequenceDataset,
    scale: ExperimentScale,
    augmentations: Sequence[str] = ("crop", "mask", "reorder"),
    rates: Sequence[float] | float = 0.5,
    distinct_pair: bool = False,
    temperature: float = 1.0,
    mode: str = "pretrain_finetune",
    cl_weight: float = 0.1,
):
    """Instantiate a method by its Table-2 name (not yet fitted).

    The CL4SRec-specific keyword arguments are ignored for baselines.
    """
    if name == "Pop":
        return Pop()
    if name == "BPR-MF":
        return BPRMF(
            BPRMFConfig(
                dim=scale.dim,
                epochs=scale.epochs,
                batch_size=scale.batch_size * 4,
                seed=scale.seed,
            )
        )
    if name == "NCF":
        return NCF(
            NCFConfig(
                dim=max(16, scale.dim // 2),
                epochs=scale.epochs,
                batch_size=scale.batch_size * 4,
                seed=scale.seed,
            )
        )
    if name == "FPMC":
        return FPMC(
            FPMCConfig(
                dim=max(16, scale.dim // 2),
                epochs=scale.epochs,
                batch_size=scale.batch_size * 4,
                seed=scale.seed,
            )
        )
    if name == "SR-GNN":
        return SRGNN(
            dataset,
            SRGNNConfig(
                dim=max(16, scale.dim // 2),
                max_length=min(20, scale.max_length),
                epochs=scale.epochs,
                batch_size=scale.batch_size,
                seed=scale.seed,
            ),
        )
    if name == "MoCo-CL4SRec":
        base = build_model(
            "CL4SRec",
            dataset,
            scale,
            augmentations=augmentations,
            rates=rates,
            distinct_pair=distinct_pair,
            temperature=temperature,
            mode=mode,
            cl_weight=cl_weight,
        )
        return MoCoCL4SRec(dataset, base.cl_config)
    if name == "Caser":
        return Caser(
            dataset,
            CaserConfig(
                dim=max(16, scale.dim // 2),
                epochs=scale.epochs,
                batch_size=scale.batch_size * 2,
                seed=scale.seed,
            ),
        )
    if name == "BERT4Rec":
        return BERT4Rec(
            dataset,
            BERT4RecConfig(
                dim=scale.dim,
                epochs=scale.epochs,
                batch_size=scale.batch_size,
                max_length=scale.max_length,
                seed=scale.seed,
            ),
        )
    if name == "GRU4Rec":
        return GRU4Rec(
            dataset,
            GRU4RecConfig(
                dim=scale.dim, hidden_dim=scale.dim, train=_train_config(scale)
            ),
        )
    if name == "SASRec":
        return SASRec(dataset, _sasrec_config(scale))
    if name == "SASRec-BPR":
        return SASRecBPR(dataset, _sasrec_config(scale))
    if name == "CL4SRec":
        config = CL4SRecConfig(
            sasrec=_sasrec_config(scale),
            augmentations=tuple(augmentations),
            rates=rates,
            distinct_pair=distinct_pair,
            temperature=temperature,
            mode=mode,
            pretrain=ContrastivePretrainConfig(
                epochs=scale.pretrain_epochs,
                batch_size=scale.batch_size,
                max_length=scale.max_length,
                temperature=temperature,
                seed=scale.seed,
            ),
            joint=JointTrainConfig(
                epochs=scale.epochs,
                batch_size=scale.batch_size,
                max_length=scale.max_length,
                temperature=temperature,
                cl_weight=cl_weight,
                seed=scale.seed,
            ),
        )
        return CL4SRec(dataset, config)
    raise ValueError(f"unknown model '{name}'; expected one of {MODEL_NAMES}")
