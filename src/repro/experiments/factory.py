"""Build any of the paper's methods from a name + scale preset.

The actual registry lives in :mod:`repro.models.registry`; this module
re-exports it so existing ``repro.experiments.factory`` imports keep
working.  New code (and new models) should go through the registry
directly — see ``docs/EXTENDING.md``.
"""

from __future__ import annotations

from repro.models.registry import (  # noqa: F401 - re-exports
    EXTENSION_MODEL_NAMES,
    MODEL_NAMES,
    available_models,
    build_model,
    register_model,
)

__all__ = [
    "EXTENSION_MODEL_NAMES",
    "MODEL_NAMES",
    "available_models",
    "build_model",
    "register_model",
]
