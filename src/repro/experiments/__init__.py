"""Experiment harness: one runner per paper table/figure.

Every runner regenerates the same rows/series the paper reports:

* :mod:`repro.experiments.table1` — dataset statistics.
* :mod:`repro.experiments.table2` — overall method comparison (RQ1).
* :mod:`repro.experiments.figure4` — augmentation × proportion sweep (RQ2).
* :mod:`repro.experiments.figure5` — composition of augmentations (RQ3).
* :mod:`repro.experiments.figure6` — training-data sparsity (RQ4).
* :mod:`repro.experiments.ablations` — extension studies (projection
  head, temperature, joint vs. two-stage training).

Runners are deterministic given their ``ExperimentScale`` and seed, and
return result objects with ``to_markdown()`` for human-readable output.
"""

from repro.experiments.config import BENCH_SCALE, FULL_SCALE, SMOKE_SCALE, ExperimentScale
from repro.experiments.factory import MODEL_NAMES, build_model
from repro.experiments.reporting import ResultTable, format_float
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.figure4 import Figure4Result, run_figure4
from repro.experiments.figure5 import Figure5Result, run_figure5
from repro.experiments.figure6 import Figure6Result, run_figure6
from repro.experiments.ablations import (
    AblationResult,
    run_joint_vs_pretrain,
    run_projection_ablation,
    run_temperature_ablation,
)
from repro.experiments.convergence import ConvergenceResult, run_convergence
from repro.experiments.report import Report, build_report
from repro.experiments.sweep import SweepPoint, SweepResult, grid, run_sweep
from repro.experiments.tracking import RunRecord, RunRegistry, TrackedRun

__all__ = [
    "AblationResult",
    "BENCH_SCALE",
    "ConvergenceResult",
    "ExperimentScale",
    "FULL_SCALE",
    "Figure4Result",
    "Figure5Result",
    "Figure6Result",
    "MODEL_NAMES",
    "Report",
    "ResultTable",
    "RunRecord",
    "RunRegistry",
    "SMOKE_SCALE",
    "TrackedRun",
    "SweepPoint",
    "SweepResult",
    "Table1Result",
    "Table2Result",
    "build_model",
    "build_report",
    "format_float",
    "grid",
    "run_figure4",
    "run_figure5",
    "run_convergence",
    "run_figure6",
    "run_joint_vs_pretrain",
    "run_projection_ablation",
    "run_sweep",
    "run_table1",
    "run_table2",
    "run_temperature_ablation",
]
