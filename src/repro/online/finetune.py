"""Incremental fine-tuning: one bounded training round per stream span.

Each round runs a short joint CL4SRec optimization (``L_rec + λ·L_cl``)
over the replay buffer's current contents, starting from the weights
the serving engine currently promotes.  Rounds are crash-safe: every
round gets its own :class:`~repro.runtime.resume.TrainingRuntime`
checkpoint directory, so a loop killed mid-round resumes that round
bit-exactly (the PR-1 guarantee) instead of re-training from the start.

Determinism: the caller passes one per-round generator spawned from the
loop's root :class:`numpy.random.SeedSequence`; with a fixed seed,
identical buffer contents produce bit-identical weights.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass, field

import numpy as np

from repro.core.trainer import JointTrainConfig, train_joint
from repro.data.preprocessing import SequenceDataset
from repro.models.training import TrainConfig, train_next_item_model
from repro.runtime.checkpointing import CheckpointManager
from repro.runtime.resume import TrainingRuntime

__all__ = ["FineTuneConfig", "FineTuneRoundResult", "IncrementalFineTuner"]


@dataclass
class FineTuneConfig:
    """Per-round training hyper-parameters.

    The learning rate defaults well below the offline value (1e-3):
    online rounds see small, correlated windows of data, and a gentle
    step keeps the candidate close to the promoted weights so the
    shadow gate measures drift adaptation, not catastrophic forgetting.
    """

    epochs_per_round: int = 1
    batch_size: int = 64
    learning_rate: float = 5e-4
    max_length: int = 50
    temperature: float = 1.0
    cl_weight: float = 0.1
    clip_norm: float = 5.0
    pipeline: str = "reference"
    #: None adopts the model's current parameter dtype, so a float32
    #: checkpoint keeps fine-tuning in float32.
    dtype: str | None = None
    #: Data-parallel training workers per round (0 = single-process);
    #: threaded straight into the round's Joint/TrainConfig, so online
    #: rounds fine-tune through ``repro.train.parallel`` too.
    workers: int = 0
    #: Round-scoped TrainingRuntime checkpoints land under
    #: ``<checkpoint_dir>/round-NNNN``; None disables mid-round
    #: crash-safety (the version store still persists every round's
    #: outcome).
    checkpoint_dir: str | None = None
    checkpoint_every: int = 1
    keep: int = 2


@dataclass
class FineTuneRoundResult:
    """What one round of training did."""

    round: int
    epochs: int = 0
    losses: list[float] = field(default_factory=list)
    #: Epoch the round resumed from when a prior attempt was interrupted.
    resumed_from: int | None = None
    skipped: bool = False
    reason: str | None = None


class IncrementalFineTuner:
    """Drives per-round training of a single long-lived trainer model."""

    def __init__(self, model, config: FineTuneConfig | None = None, obs=None):
        self.model = model
        self.config = config if config is not None else FineTuneConfig()
        self.obs = obs

    def _dtype_name(self) -> str | None:
        if self.config.dtype is not None:
            return self.config.dtype
        for parameter in self.model.parameters():
            if np.issubdtype(parameter.data.dtype, np.floating):
                return str(parameter.data.dtype)
        return None

    def _runtime(self, round_index: int) -> TrainingRuntime | None:
        if self.config.checkpoint_dir is None:
            return None
        directory = os.path.join(
            self.config.checkpoint_dir, f"round-{round_index:04d}"
        )
        manager = CheckpointManager(directory, keep=self.config.keep)
        return TrainingRuntime(
            manager,
            checkpoint_every=self.config.checkpoint_every,
            resume=True,
            handle_signals=False,
            obs=self.obs,
        )

    def discard_round(self, round_index: int) -> None:
        """Drop a refused round's runtime checkpoints (audit lives in
        the version store; keeping refuted weights around would let a
        later resume pick them back up)."""
        if self.config.checkpoint_dir is None:
            return
        directory = os.path.join(
            self.config.checkpoint_dir, f"round-{round_index:04d}"
        )
        shutil.rmtree(directory, ignore_errors=True)

    def run_round(
        self,
        dataset: SequenceDataset,
        round_index: int,
        rng: np.random.Generator,
    ) -> FineTuneRoundResult:
        """Fine-tune the trainer model in place on ``dataset``."""
        config = self.config
        runtime = self._runtime(round_index)
        result = FineTuneRoundResult(round=round_index)
        contrastive = hasattr(self.model, "pair_sampler")
        try:
            if contrastive:
                losses = train_joint(
                    self.model,
                    dataset,
                    JointTrainConfig(
                        epochs=config.epochs_per_round,
                        batch_size=config.batch_size,
                        learning_rate=config.learning_rate,
                        max_length=config.max_length,
                        temperature=config.temperature,
                        cl_weight=config.cl_weight,
                        clip_norm=config.clip_norm,
                        pipeline=config.pipeline,
                        dtype=self._dtype_name(),
                        workers=config.workers,
                    ),
                    rng=rng,
                    runtime=runtime,
                    obs=self.obs,
                )
            else:
                # Plain next-item fine-tuning for non-contrastive models
                # (e.g. a bare SASRec checkpoint).
                history = train_next_item_model(
                    self.model,
                    dataset,
                    TrainConfig(
                        epochs=config.epochs_per_round,
                        batch_size=config.batch_size,
                        learning_rate=config.learning_rate,
                        max_length=config.max_length,
                        clip_norm=config.clip_norm,
                        eval_every=0,
                        pipeline=config.pipeline,
                        dtype=self._dtype_name(),
                        workers=config.workers,
                    ),
                    rng=rng,
                    runtime=runtime,
                    obs=self.obs,
                )
                losses = history.losses
        except ValueError as error:
            # The loaders raise when no buffered sequence is long
            # enough to train on; the round refuses rather than dies.
            result.skipped = True
            result.reason = str(error)
            return result
        result.losses = [float(value) for value in losses]
        result.epochs = len(result.losses)
        if runtime is not None:
            result.resumed_from = runtime.resumed_from
        self.model.eval()
        return result
