"""Streaming ingestion: serving traffic → incremental training data.

Turns a :class:`~repro.data.synthetic.TrafficTrace` (or any iterator of
its event dicts) into per-round batches of interaction sequences.  Two
payload shapes arrive on the wire (see ``docs/SCALING.md``):

* ``{"sequence": [...]}`` — a cold visitor's raw session; the item ids
  are the interactions themselves, so the session *is* the training
  sequence (invalid ids outside ``[1, num_items]`` are dropped).
* ``{"user": u}`` — a hot user identified by dataset id; their current
  history (``dataset.full_sequence``) is re-observed, which weights the
  replay buffer toward the Zipf head exactly as live traffic would.

A deterministic round-robin counter routes every ``holdout_every``-th
eligible sequence to the shadow-evaluation holdout instead of the
training set, so the held-out traffic is disjoint from what the
fine-tuner sees and identical across runs at a fixed trace seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.data.preprocessing import SequenceDataset
from repro.data.synthetic import TrafficTrace

__all__ = ["StreamBatch", "StreamIngestor"]


@dataclass
class StreamBatch:
    """One round's worth of consumed stream traffic."""

    #: HTTP-level events consumed (a batch request is one event).
    events: int = 0
    #: Sequences routed to the training side of the split.
    train: list[np.ndarray] = field(default_factory=list)
    #: Sequences routed to the shadow-evaluation holdout.
    holdout: list[np.ndarray] = field(default_factory=list)
    #: Payloads dropped (too short after filtering, unknown user, …).
    skipped: int = 0
    #: True when the source ran dry before the event budget was spent.
    exhausted: bool = False

    @property
    def sequences(self) -> int:
        return len(self.train) + len(self.holdout)


class StreamIngestor:
    """Stateful consumer over a traffic event stream.

    The iterator persists across :meth:`take` calls, so successive
    rounds consume successive spans of the trace — replaying the trace
    from the start each round would show the fine-tuner the same data
    twice and hide drift.
    """

    def __init__(
        self,
        source: TrafficTrace | Iterator[dict],
        dataset: SequenceDataset | None = None,
        holdout_every: int = 4,
        min_length: int = 3,
    ) -> None:
        if holdout_every < 2:
            raise ValueError(
                f"holdout_every must be >= 2 (1 would hold out "
                f"everything), got {holdout_every}"
            )
        if isinstance(source, TrafficTrace):
            self._events: Iterator[dict] = source.events()
        else:
            self._events = iter(source)
        self.dataset = dataset
        self.holdout_every = holdout_every
        self.min_length = min_length
        #: Eligible sequences seen so far — drives the holdout split.
        self.sequences_seen = 0
        #: Total events consumed across all rounds.
        self.events_consumed = 0
        self._exhausted = False

    @property
    def exhausted(self) -> bool:
        return self._exhausted

    def _payload_sequence(self, payload: dict) -> np.ndarray | None:
        """Decode one request payload into an item-id sequence."""
        if "sequence" in payload:
            sequence = np.asarray(payload["sequence"], dtype=np.int64)
            if self.dataset is not None:
                valid = (sequence >= 1) & (sequence <= self.dataset.num_items)
                sequence = sequence[valid]
            return sequence
        if "user" in payload and self.dataset is not None:
            user = int(payload["user"])
            if 0 <= user < self.dataset.num_users:
                return np.asarray(
                    self.dataset.full_sequence(user, split="test"),
                    dtype=np.int64,
                )
        return None

    def take(self, max_events: int) -> StreamBatch:
        """Consume up to ``max_events`` events into one batch."""
        batch = StreamBatch()
        while batch.events < max_events:
            try:
                event = next(self._events)
            except StopIteration:
                self._exhausted = True
                batch.exhausted = True
                break
            batch.events += 1
            self.events_consumed += 1
            for payload in event["requests"]:
                sequence = self._payload_sequence(payload)
                if sequence is None or len(sequence) < self.min_length:
                    batch.skipped += 1
                    continue
                self.sequences_seen += 1
                if self.sequences_seen % self.holdout_every == 0:
                    batch.holdout.append(sequence)
                else:
                    batch.train.append(sequence)
        return batch
