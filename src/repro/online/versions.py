"""Checksummed, versioned model artifacts for the online loop.

Every fine-tuning round publishes a candidate archive here; the
promotion gate then marks it ``promoted`` or ``refused`` (with the
reason), so the store doubles as an audit log of every decision the
loop ever made.  Archives use the PR-1 checkpoint format — atomic
``.npz`` + SHA-256 sidecar, ``model/<param>`` keys — which makes each
version directly consumable by :meth:`RecommendationEngine.swap_model`
and ``POST /admin/reload`` without conversion.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.nn.serialization import atomic_write_bytes
from repro.runtime.checkpointing import (
    CHECKSUM_SUFFIX,
    file_sha256,
    read_archive,
    write_archive,
)

__all__ = ["ModelVersionStore", "VersionRecord"]

MANIFEST_NAME = "versions.json"

#: Decisions a version can carry.  ``baseline`` is the pre-loop serving
#: state; ``pending`` means published but not yet gated.
DECISIONS = ("baseline", "pending", "promoted", "refused")


@dataclass
class VersionRecord:
    """One entry of the manifest."""

    version: int
    filename: str
    checksum: str
    round: int | None = None
    parent: int | None = None
    decision: str = "pending"
    reason: str | None = None
    metrics: dict = field(default_factory=dict)
    #: False once the archive file was pruned (the record survives).
    archived: bool = True

    def to_dict(self) -> dict:
        return asdict(self)


class ModelVersionStore:
    """Versioned model archives + a JSON manifest of gate decisions.

    ``keep`` bounds how many archive *files* are retained; manifest
    records are never dropped, and the newest serving version (latest
    ``promoted``/``baseline``) is always kept on disk so a crashed loop
    can re-arm ``swap_model`` from the store alone.
    """

    def __init__(self, directory: str | os.PathLike, keep: int = 8) -> None:
        if keep < 1:
            raise ValueError(f"keep must be positive, got {keep}")
        self.directory = os.fspath(directory)
        self.keep = keep
        os.makedirs(self.directory, exist_ok=True)
        self._records: list[VersionRecord] = []
        self._load_manifest()

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    def _load_manifest(self) -> None:
        if not os.path.exists(self.manifest_path):
            return
        with open(self.manifest_path) as handle:
            payload = json.load(handle)
        self._records = [VersionRecord(**entry) for entry in payload["versions"]]

    def _write_manifest(self) -> None:
        payload = {
            "format_version": 1,
            "versions": [record.to_dict() for record in self._records],
        }
        atomic_write_bytes(
            self.manifest_path,
            (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode(),
        )

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @property
    def records(self) -> list[VersionRecord]:
        return list(self._records)

    def record(self, version: int) -> VersionRecord:
        for entry in self._records:
            if entry.version == version:
                return entry
        raise KeyError(f"no version {version} in {self.directory}")

    def path(self, version: int) -> str:
        return os.path.join(self.directory, self.record(version).filename)

    def latest(self) -> VersionRecord | None:
        """The most recently published version, regardless of decision."""
        return self._records[-1] if self._records else None

    def latest_serving(self) -> VersionRecord | None:
        """The newest version the gate let into (or found in) serving."""
        for entry in reversed(self._records):
            if entry.decision in ("promoted", "baseline"):
                return entry
        return None

    def load_state(self, version: int) -> dict[str, np.ndarray]:
        """The model state dict of ``version`` (checksum-verified)."""
        entry = self.record(version)
        if not entry.archived:
            raise FileNotFoundError(
                f"version {version} archive was pruned (keep={self.keep})"
            )
        payload = read_archive(self.path(version))
        return {
            name[len("model/"):]: values
            for name, values in payload.items()
            if name.startswith("model/")
        }

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def publish(
        self,
        state: dict[str, np.ndarray],
        round_index: int | None = None,
        decision: str = "pending",
        reason: str | None = None,
        metrics: dict | None = None,
    ) -> VersionRecord:
        """Write a new version archive and append its manifest record."""
        if decision not in DECISIONS:
            raise ValueError(f"unknown decision {decision!r}")
        version = self._records[-1].version + 1 if self._records else 1
        filename = f"v-{version:06d}.npz"
        path = os.path.join(self.directory, filename)
        arrays: dict[str, np.ndarray] = {
            "meta/format_version": np.asarray(1),
            "meta/version": np.asarray(version),
        }
        if round_index is not None:
            arrays["meta/round"] = np.asarray(round_index)
        for name, values in state.items():
            arrays[f"model/{name}"] = np.asarray(values)
        write_archive(path, arrays)
        parent = self.latest_serving()
        record = VersionRecord(
            version=version,
            filename=filename,
            checksum=file_sha256(path),
            round=round_index,
            parent=parent.version if parent is not None else None,
            decision=decision,
            reason=reason,
            metrics=dict(metrics or {}),
        )
        self._records.append(record)
        self._prune()
        self._write_manifest()
        return record

    def mark(
        self,
        version: int,
        decision: str,
        reason: str | None = None,
        metrics: dict | None = None,
    ) -> VersionRecord:
        """Record the gate's verdict for ``version``."""
        if decision not in DECISIONS:
            raise ValueError(f"unknown decision {decision!r}")
        entry = self.record(version)
        entry.decision = decision
        entry.reason = reason
        if metrics:
            entry.metrics.update(metrics)
        self._prune()
        self._write_manifest()
        return entry

    def _prune(self) -> None:
        """Drop archive files beyond ``keep``, sparing the serving one."""
        serving = self.latest_serving()
        keep_versions = {
            entry.version for entry in self._records[-self.keep:]
        }
        if serving is not None:
            keep_versions.add(serving.version)
        for entry in self._records:
            if not entry.archived or entry.version in keep_versions:
                continue
            path = os.path.join(self.directory, entry.filename)
            for victim in (path, path + CHECKSUM_SUFFIX):
                try:
                    os.remove(victim)
                except FileNotFoundError:
                    pass
            entry.archived = False
