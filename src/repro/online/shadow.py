"""Shadow evaluation + the promotion gate.

Before a fine-tuned candidate reaches the serving engine it must prove
itself on traffic the fine-tuner never saw: the ingestor's held-out
split.  Two legs run, both offline and deterministic:

* **Ranking leg** — :class:`~repro.eval.evaluator.Evaluator` ranks each
  held-out user's leave-one-out target under the baseline (currently
  serving) and candidate weights, yielding HR@k / NDCG@k deltas.
* **Replay leg** — the held-out sequences are replayed as requests
  through two in-process :class:`~repro.serve.engine.
  RecommendationEngine` instances (old vs new weights, fail-hard
  resilience off so nothing masks an error), mirroring the
  ``repro.loadtest`` invariants: every request answered, no error
  reasons outside the refusal envelope, ``k`` finite-scored items each.
  Top-k churn between the two engines is reported so operators can see
  how much a promotion would shuffle live lists.

The gate then refuses or promotes and always records why — refusal
reasons are machine-readable constants (``REFUSAL_REASONS``) mirroring
the serving layer's error-envelope idiom.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.data.preprocessing import SequenceDataset
from repro.eval.evaluator import Evaluator
from repro.serve.engine import RecommendationEngine
from repro.serve.requests import RecRequest

__all__ = [
    "GateConfig",
    "GateDecision",
    "PromotionGate",
    "ShadowReport",
    "REFUSAL_REASONS",
    "shadow_evaluate",
]

#: Machine-readable refusal reasons the gate can record.
REASON_INSUFFICIENT_DATA = "insufficient_data"
REASON_INSUFFICIENT_SHADOW = "insufficient_shadow_traffic"
REASON_NO_TRAINABLE_DATA = "no_trainable_data"
REASON_NON_FINITE = "non_finite_metrics"
REASON_REGRESSION = "metric_regression"
REASON_INVARIANT = "shadow_invariant_violation"
REASON_SWAP_FAILED = "swap_failed"
REFUSAL_REASONS = frozenset(
    {
        REASON_INSUFFICIENT_DATA,
        REASON_INSUFFICIENT_SHADOW,
        REASON_NO_TRAINABLE_DATA,
        REASON_NON_FINITE,
        REASON_REGRESSION,
        REASON_INVARIANT,
        REASON_SWAP_FAILED,
    }
)


@dataclass
class GateConfig:
    """Promotion-gate thresholds.

    ``epsilon`` is the tolerated per-metric regression: the candidate
    promotes iff ``candidate >= baseline - epsilon`` on every gated
    metric.  ``epsilon=0`` demands no regression at all; a large
    epsilon (e.g. ``1.0`` — metrics live in ``[0, 1]``) turns the
    metric check into a finiteness check, which is how the CI smoke
    keeps its first round deterministic.
    """

    metrics: tuple[str, ...] = ("HR@10", "NDCG@10")
    epsilon: float = 0.0
    #: Held-out users the ranking leg needs before deltas mean anything.
    min_shadow_users: int = 8
    #: Fresh training sequences a round must ingest to justify a
    #: candidate at all.
    min_new_sequences: int = 4


@dataclass
class ShadowReport:
    """Old-vs-new comparison on held-out stream traffic."""

    baseline: dict[str, float]
    candidate: dict[str, float]
    shadow_users: int
    replay: dict = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)

    @property
    def deltas(self) -> dict[str, float]:
        return {
            name: self.candidate[name] - self.baseline[name]
            for name in self.candidate
            if name in self.baseline
        }

    def to_dict(self) -> dict:
        return {
            "baseline": dict(self.baseline),
            "candidate": dict(self.candidate),
            "deltas": self.deltas,
            "shadow_users": self.shadow_users,
            "replay": dict(self.replay),
            "violations": list(self.violations),
        }


@dataclass
class GateDecision:
    """The gate's verdict for one candidate."""

    promote: bool
    reason: str
    detail: str | None = None

    def to_dict(self) -> dict:
        return {
            "promote": self.promote,
            "reason": self.reason,
            "detail": self.detail,
        }


def _replay_requests(
    shadow_dataset: SequenceDataset, k: int, max_requests: int
) -> list[RecRequest]:
    """Held-out sessions as serving requests (deterministic order)."""
    requests: list[RecRequest] = []
    for user in shadow_dataset.evaluation_users("test"):
        sequence = shadow_dataset.full_sequence(int(user), split="test")
        if len(sequence) == 0:
            continue
        requests.append(RecRequest(sequence=tuple(int(i) for i in sequence), k=k))
        if len(requests) >= max_requests:
            break
    return requests


def _replay_leg(
    baseline_model,
    candidate_model,
    shadow_dataset: SequenceDataset,
    serve_dataset: SequenceDataset,
    k: int,
    max_requests: int,
) -> tuple[dict, list[str]]:
    """Replay held-out traffic through both engines; check invariants."""
    requests = _replay_requests(shadow_dataset, k, max_requests)
    replay = {"requests": len(requests), "answered": 0, "churn": None}
    violations: list[str] = []
    if not requests:
        return replay, violations
    overlaps: list[float] = []
    baseline_items: list[np.ndarray] = []
    for tag, model in (("baseline", baseline_model), ("candidate", candidate_model)):
        engine = RecommendationEngine(
            model,
            serve_dataset,
            cache_size=1,
            resilience=None,
        )
        try:
            results = engine.recommend_batch(list(requests), on_error="report")
        finally:
            engine.close()
        if len(results) != len(requests):
            violations.append(
                f"{tag}: {len(results)} responses for {len(requests)} requests"
            )
            continue
        answered = 0
        items_by_request: list[np.ndarray] = []
        for result in results:
            if result.error is not None:
                violations.append(
                    f"{tag}: request errored with reason "
                    f"{result.error!r} ({result.detail})"
                )
                items_by_request.append(np.asarray([], dtype=np.int64))
                continue
            if len(result.items) == 0:
                violations.append(f"{tag}: empty recommendation list")
                items_by_request.append(np.asarray([], dtype=np.int64))
                continue
            if not np.all(np.isfinite(np.asarray(result.scores, dtype=np.float64))):
                violations.append(f"{tag}: non-finite recommendation scores")
            answered += 1
            items_by_request.append(np.asarray(result.items, dtype=np.int64))
        if tag == "baseline":
            replay["answered"] = answered
            baseline_items = items_by_request
        else:
            for old, new in zip(baseline_items, items_by_request):
                if len(old) == 0 or len(new) == 0:
                    continue
                width = min(len(old), len(new))
                shared = len(set(old.tolist()) & set(new.tolist()))
                overlaps.append(shared / float(width))
    if overlaps:
        replay["churn"] = float(1.0 - float(np.mean(overlaps)))
    return replay, violations


def shadow_evaluate(
    baseline_model,
    candidate_model,
    shadow_dataset: SequenceDataset,
    serve_dataset: SequenceDataset,
    ks: tuple[int, ...] = (5, 10),
    k: int = 10,
    max_requests: int = 64,
    obs=None,
    round_index: int | None = None,
) -> ShadowReport:
    """Run both shadow legs and assemble the report."""
    shadow_users = int(len(shadow_dataset.evaluation_users("test")))
    if shadow_users > 0:
        evaluator = Evaluator(
            shadow_dataset, split="test", ks=ks, batch_size=128
        )
        baseline = {
            name: float(value)
            for name, value in evaluator.evaluate(baseline_model).metrics.items()
        }
        candidate = {
            name: float(value)
            for name, value in evaluator.evaluate(candidate_model).metrics.items()
        }
    else:
        baseline = {}
        candidate = {}
    replay, violations = _replay_leg(
        baseline_model,
        candidate_model,
        shadow_dataset,
        serve_dataset,
        k=k,
        max_requests=max_requests,
    )
    report = ShadowReport(
        baseline=baseline,
        candidate=candidate,
        shadow_users=shadow_users,
        replay=replay,
        violations=violations,
    )
    if obs is not None:
        obs.event(
            "shadow_eval",
            round=round_index,
            shadow_users=shadow_users,
            baseline=baseline,
            candidate=candidate,
            deltas=report.deltas,
            churn=replay.get("churn"),
            violations=len(violations),
        )
    return report


class PromotionGate:
    """Decides whether a candidate version may reach serving."""

    def __init__(self, config: GateConfig | None = None) -> None:
        self.config = config if config is not None else GateConfig()

    def precheck(
        self, new_sequences: int, shadow_users: int
    ) -> GateDecision | None:
        """Cheap refusals that skip training entirely; None = proceed."""
        if new_sequences < self.config.min_new_sequences:
            return GateDecision(
                promote=False,
                reason=REASON_INSUFFICIENT_DATA,
                detail=(
                    f"round ingested {new_sequences} training sequences; "
                    f"gate requires {self.config.min_new_sequences}"
                ),
            )
        if shadow_users < self.config.min_shadow_users:
            return GateDecision(
                promote=False,
                reason=REASON_INSUFFICIENT_SHADOW,
                detail=(
                    f"{shadow_users} held-out shadow users; gate requires "
                    f"{self.config.min_shadow_users}"
                ),
            )
        return None

    def decide(self, report: ShadowReport) -> GateDecision:
        """The full verdict, given a completed shadow report."""
        if report.shadow_users < self.config.min_shadow_users:
            return GateDecision(
                promote=False,
                reason=REASON_INSUFFICIENT_SHADOW,
                detail=(
                    f"{report.shadow_users} held-out shadow users; gate "
                    f"requires {self.config.min_shadow_users}"
                ),
            )
        if report.violations:
            return GateDecision(
                promote=False,
                reason=REASON_INVARIANT,
                detail="; ".join(report.violations[:4]),
            )
        for name in self.config.metrics:
            base = report.baseline.get(name)
            cand = report.candidate.get(name)
            if base is None or cand is None:
                return GateDecision(
                    promote=False,
                    reason=REASON_NON_FINITE,
                    detail=f"metric {name} missing from the shadow report",
                )
            if not (math.isfinite(base) and math.isfinite(cand)):
                return GateDecision(
                    promote=False,
                    reason=REASON_NON_FINITE,
                    detail=f"{name}: baseline={base!r} candidate={cand!r}",
                )
            if cand < base - self.config.epsilon:
                return GateDecision(
                    promote=False,
                    reason=f"{REASON_REGRESSION}:{name}",
                    detail=(
                        f"{name} fell {base - cand:.6f} "
                        f"(baseline {base:.6f} → candidate {cand:.6f}, "
                        f"epsilon {self.config.epsilon})"
                    ),
                )
        return GateDecision(promote=True, reason="gate_passed")
