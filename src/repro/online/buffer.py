"""Bounded replay buffer of recent interaction sequences.

The online loop fine-tunes on a sliding window of the most recent
stream traffic rather than the full history: old interactions age out
(FIFO) so the encoder tracks distribution drift — the motivation for
online adaptation in "Relative Contrastive Learning" and
"Meta-optimized Contrastive Learning" (see PAPERS.md) — while the
bounded capacity keeps per-round training cost flat no matter how long
the loop runs.  Depth and eviction counts are exported so the obs
stream (``replay_buffer_depth``) can watch the window fill.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

import numpy as np

from repro.data.preprocessing import SequenceDataset, leave_one_out_split

__all__ = ["ReplayBuffer"]


class ReplayBuffer:
    """FIFO buffer of the ``capacity`` most recent sequences.

    Deterministic by construction: contents depend only on the order of
    :meth:`extend` calls, and :meth:`as_dataset` materializes sequences
    oldest-to-newest so two loops fed the same stream build identical
    training sets.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._items: deque[np.ndarray] = deque()
        self.total_ingested = 0
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def depth(self) -> int:
        """Current number of buffered sequences (the obs gauge)."""
        return len(self._items)

    def add(self, sequence: np.ndarray) -> None:
        """Append one sequence, evicting the oldest beyond capacity."""
        self._items.append(np.asarray(sequence, dtype=np.int64))
        self.total_ingested += 1
        while len(self._items) > self.capacity:
            self._items.popleft()
            self.evicted += 1

    def extend(self, sequences: Iterable[np.ndarray]) -> int:
        """Append many sequences; returns how many were added."""
        added = 0
        for sequence in sequences:
            self.add(sequence)
            added += 1
        return added

    def sequences(self) -> list[np.ndarray]:
        """Buffered sequences oldest-to-newest (copies of references)."""
        return list(self._items)

    def as_dataset(
        self,
        base: SequenceDataset,
        name: str | None = None,
        split: bool = False,
    ) -> SequenceDataset:
        """Materialize the buffer as a :class:`SequenceDataset`.

        ``base`` supplies the item vocabulary (``num_items``) so models
        built against the serving dataset accept the result without
        re-indexing.  With ``split=False`` (the fine-tuning view) every
        full sequence becomes a training prefix and no targets are held
        out — incremental training uses everything.  With ``split=True``
        (the shadow-evaluation view) each sequence gets the standard
        leave-one-out treatment, so :class:`~repro.eval.evaluator.
        Evaluator` ranks a genuinely held-out target per user.
        """
        train: list[np.ndarray] = []
        valid: list[int | None] = []
        test: list[int | None] = []
        for sequence in self._items:
            if split:
                prefix, valid_item, test_item = leave_one_out_split(sequence)
                train.append(prefix)
                valid.append(valid_item)
                test.append(test_item)
            else:
                train.append(sequence)
                valid.append(None)
                test.append(None)
        return SequenceDataset(
            train_sequences=train,
            valid_targets=valid,
            test_targets=test,
            num_items=base.num_items,
            name=name or f"{base.name}-replay",
            statistics={
                "num_users": float(len(train)),
                "num_items": float(base.num_items),
                "buffer_capacity": float(self.capacity),
                "buffer_evicted": float(self.evicted),
            },
            item_attributes=base.item_attributes,
        )
