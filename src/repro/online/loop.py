"""The online learning loop: ingest → fine-tune → shadow-gate → swap.

One :class:`OnlineLoop` round:

1. **Ingest** — consume a span of the traffic stream into the bounded
   replay buffer (training side) and the shadow holdout buffer.
2. **Precheck** — refuse cheaply (no training) when the round ingested
   too little fresh data or the holdout is too thin to judge a model.
3. **Fine-tune** — run the incremental trainer on the replay window,
   starting from the currently promoted weights.
4. **Publish** — write the candidate into the
   :class:`~repro.online.versions.ModelVersionStore` (checksummed,
   ``swap_model``-compatible).
5. **Shadow-evaluate + gate** — old vs new on held-out traffic; the
   gate promotes or refuses and the verdict lands in the store.
6. **Swap or roll back** — a promotion goes through
   ``engine.swap_model`` (or the HTTP server's serialized ``reload``
   when one is attached), bumping ``model_version`` exactly once; any
   refusal — including a failed swap self-check — restores the trainer
   to the promoted weights so the next round starts clean.

Determinism: all randomness flows from one ``SeedSequence`` spawning
one child stream per round, the stream split is counter-based, and the
shadow legs are pure functions of weights + holdout — so a fixed seed
reproduces every decision and every shadow metric bit-for-bit (the
``ts`` fields of obs events are the only nondeterministic output).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.data.preprocessing import SequenceDataset
from repro.nn.serialization import CheckpointError
from repro.online.buffer import ReplayBuffer
from repro.online.finetune import (
    FineTuneConfig,
    FineTuneRoundResult,
    IncrementalFineTuner,
)
from repro.online.shadow import (
    GateConfig,
    GateDecision,
    PromotionGate,
    REASON_NO_TRAINABLE_DATA,
    REASON_SWAP_FAILED,
    shadow_evaluate,
)
from repro.online.stream import StreamIngestor
from repro.online.versions import ModelVersionStore
from repro.serve.engine import ModelSwapError

__all__ = ["OnlineLoop", "OnlineLoopConfig", "OnlineLoopResult", "RoundRecord"]


@dataclass
class OnlineLoopConfig:
    """Knobs of the whole loop (see docs/ONLINE_LEARNING.md)."""

    rounds: int = 1
    #: Traffic events (HTTP-level; a batch counts once) per round.
    events_per_round: int = 200
    buffer_capacity: int = 2048
    holdout_capacity: int = 512
    #: Every N-th eligible sequence feeds the shadow holdout.
    holdout_every: int = 4
    min_sequence_length: int = 3
    #: Evaluator cutoffs for the shadow ranking leg.
    ks: tuple[int, ...] = (5, 10)
    #: Top-k width and request cap of the shadow replay leg.
    shadow_k: int = 10
    shadow_requests: int = 64
    seed: int = 0
    gate: GateConfig = field(default_factory=GateConfig)
    finetune: FineTuneConfig = field(default_factory=FineTuneConfig)


@dataclass
class RoundRecord:
    """Everything one round decided, for the report and the tests."""

    round: int
    decision: str = "refuse"
    reason: str = ""
    detail: str | None = None
    events: int = 0
    new_sequences: int = 0
    holdout_sequences: int = 0
    skipped_payloads: int = 0
    stream_exhausted: bool = False
    buffer_depth: int = 0
    holdout_depth: int = 0
    shadow_users: int = 0
    candidate_version: int | None = None
    model_version: int = 0
    train_losses: list[float] = field(default_factory=list)
    shadow: dict | None = None
    duration_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "round": self.round,
            "decision": self.decision,
            "reason": self.reason,
            "detail": self.detail,
            "events": self.events,
            "new_sequences": self.new_sequences,
            "holdout_sequences": self.holdout_sequences,
            "skipped_payloads": self.skipped_payloads,
            "stream_exhausted": self.stream_exhausted,
            "buffer_depth": self.buffer_depth,
            "holdout_depth": self.holdout_depth,
            "shadow_users": self.shadow_users,
            "candidate_version": self.candidate_version,
            "model_version": self.model_version,
            "train_losses": self.train_losses,
            "shadow": self.shadow,
            "duration_s": self.duration_s,
        }


@dataclass
class OnlineLoopResult:
    """The loop's report (``repro online --output`` serializes this)."""

    rounds: list[RoundRecord] = field(default_factory=list)
    promotions: int = 0
    refusals: int = 0
    final_model_version: int = 0
    store_directory: str = ""

    def to_dict(self) -> dict:
        return {
            "rounds": [record.to_dict() for record in self.rounds],
            "promotions": self.promotions,
            "refusals": self.refusals,
            "final_model_version": self.final_model_version,
            "store_directory": self.store_directory,
        }


def _copy_state(state: dict) -> dict:
    return {name: np.copy(values) for name, values in state.items()}


class OnlineLoop:
    """Drives rounds against one serving engine.

    Parameters
    ----------
    engine:
        The live :class:`~repro.serve.engine.RecommendationEngine`.
        Its current weights are the round-0 baseline; promotions reach
        it via ``swap_model``.
    trainer_model:
        A second model instance of the same architecture (build it with
        :func:`repro.models.registry.build_model`).  The loop
        immediately aligns its weights with the engine's, then
        fine-tunes it in place — the serving weights are never touched
        by the optimizer.
    source:
        A :class:`~repro.data.synthetic.TrafficTrace` or an iterator of
        its event dicts.
    store:
        The :class:`~repro.online.versions.ModelVersionStore` receiving
        every baseline/candidate version and gate verdict.
    server:
        Optional :class:`~repro.serve.server.RecommendationServer`
        wrapping ``engine``; when given, promotions go through
        ``server.reload`` so the swap serializes with in-flight
        requests behind the server lock.
    """

    def __init__(
        self,
        engine,
        trainer_model,
        source,
        store: ModelVersionStore,
        config: OnlineLoopConfig | None = None,
        obs=None,
        server=None,
    ) -> None:
        self.engine = engine
        self.trainer_model = trainer_model
        self.store = store
        self.config = config if config is not None else OnlineLoopConfig()
        self.obs = obs
        self.server = server
        self.dataset: SequenceDataset = engine.dataset
        self.ingestor = StreamIngestor(
            source,
            dataset=self.dataset,
            holdout_every=self.config.holdout_every,
            min_length=self.config.min_sequence_length,
        )
        self.buffer = ReplayBuffer(self.config.buffer_capacity)
        self.holdout = ReplayBuffer(self.config.holdout_capacity)
        self.finetuner = IncrementalFineTuner(
            trainer_model, self.config.finetune, obs=obs
        )
        self.gate = PromotionGate(self.config.gate)
        self._seed_seq = np.random.SeedSequence(self.config.seed)
        self._rounds_run = 0

        # The trainer starts from the serving weights, and the store's
        # first record is the pre-loop baseline so every later candidate
        # has a parent to roll back to.
        serving_dtype = None
        for parameter in engine.model.parameters():
            if np.issubdtype(parameter.data.dtype, np.floating):
                serving_dtype = parameter.data.dtype
                break
        if serving_dtype is not None and hasattr(trainer_model, "to_dtype"):
            trainer_model.to_dtype(serving_dtype)
        trainer_model.load_state_dict(_copy_state(engine.model.state_dict()))
        trainer_model.eval()
        if self.store.latest() is None:
            self.store.publish(engine.model.state_dict(), decision="baseline")

    # ------------------------------------------------------------------
    def _rollback_trainer(self) -> None:
        """Reset the trainer to the newest promoted/baseline weights."""
        serving = self.store.latest_serving()
        if serving is not None and serving.archived:
            self.trainer_model.load_state_dict(self.store.load_state(serving.version))
        else:
            self.trainer_model.load_state_dict(
                _copy_state(self.engine.model.state_dict())
            )
        self.trainer_model.eval()

    def _swap(self, checkpoint: str) -> dict:
        if self.server is not None:
            return self.server.reload(checkpoint)
        return self.engine.swap_model(checkpoint)

    def _emit_round(self, record: RoundRecord) -> None:
        if self.obs is None:
            return
        self.obs.event(
            "online_round",
            round=record.round,
            decision=record.decision,
            reason=record.reason,
            events=record.events,
            new_sequences=record.new_sequences,
            buffer_depth=record.buffer_depth,
            holdout_depth=record.holdout_depth,
            shadow_users=record.shadow_users,
            candidate_version=record.candidate_version,
            model_version=record.model_version,
            stream_exhausted=record.stream_exhausted,
            duration_s=record.duration_s,
        )
        self.obs.observe("online.round_seconds", record.duration_s)
        self.obs.increment("online_rounds")
        if record.decision == "promote":
            self.obs.increment("online_promotions")
            self.obs.event(
                "online_promote",
                round=record.round,
                version=record.candidate_version,
                model_version=record.model_version,
            )
        else:
            self.obs.increment("online_refusals")
            self.obs.event(
                "online_refuse",
                round=record.round,
                reason=record.reason,
                candidate_version=record.candidate_version,
            )

    # ------------------------------------------------------------------
    def run_round(self) -> RoundRecord:
        """Execute one ingest→train→gate→swap round."""
        round_index = self._rounds_run
        self._rounds_run += 1
        started = time.monotonic()
        rng = np.random.default_rng(self._seed_seq.spawn(1)[0])
        record = RoundRecord(round=round_index, model_version=self.engine.model_version)

        batch = self.ingestor.take(self.config.events_per_round)
        self.buffer.extend(batch.train)
        self.holdout.extend(batch.holdout)
        record.events = batch.events
        record.new_sequences = len(batch.train)
        record.holdout_sequences = len(batch.holdout)
        record.skipped_payloads = batch.skipped
        record.stream_exhausted = batch.exhausted
        record.buffer_depth = self.buffer.depth
        record.holdout_depth = self.holdout.depth
        if self.obs is not None:
            self.obs.event(
                "online_ingest",
                round=round_index,
                events=batch.events,
                new_train_sequences=len(batch.train),
                new_holdout_sequences=len(batch.holdout),
                skipped_payloads=batch.skipped,
                buffer_depth=self.buffer.depth,
                holdout_depth=self.holdout.depth,
                stream_exhausted=batch.exhausted,
            )
            self.obs.registry.gauge("replay_buffer_depth").set(self.buffer.depth)

        shadow_dataset = self.holdout.as_dataset(
            self.dataset, name=f"{self.dataset.name}-shadow", split=True
        )
        record.shadow_users = int(
            len(shadow_dataset.evaluation_users("test"))
        )

        refusal = self.gate.precheck(record.new_sequences, record.shadow_users)
        decision: GateDecision
        if refusal is not None:
            decision = refusal
        else:
            train_dataset = self.buffer.as_dataset(self.dataset, split=False)
            trained: FineTuneRoundResult = self.finetuner.run_round(
                train_dataset, round_index, rng
            )
            record.train_losses = trained.losses
            if trained.skipped:
                decision = GateDecision(
                    promote=False,
                    reason=REASON_NO_TRAINABLE_DATA,
                    detail=trained.reason,
                )
            else:
                candidate = self.store.publish(
                    self.trainer_model.state_dict(), round_index=round_index
                )
                record.candidate_version = candidate.version
                report = shadow_evaluate(
                    self.engine.model,
                    self.trainer_model,
                    shadow_dataset,
                    self.dataset,
                    ks=self.config.ks,
                    k=self.config.shadow_k,
                    max_requests=self.config.shadow_requests,
                    obs=self.obs,
                    round_index=round_index,
                )
                record.shadow = report.to_dict()
                decision = self.gate.decide(report)
                if decision.promote:
                    try:
                        self._swap(self.store.path(candidate.version))
                    except (CheckpointError, ModelSwapError) as error:
                        decision = GateDecision(
                            promote=False,
                            reason=REASON_SWAP_FAILED,
                            detail=str(error),
                        )
                self.store.mark(
                    candidate.version,
                    "promoted" if decision.promote else "refused",
                    reason=None if decision.promote else decision.reason,
                    metrics=report.deltas,
                )

        if not decision.promote:
            # The next round's candidate must grow from promoted
            # weights, not from a refused experiment.
            self._rollback_trainer()
            self.finetuner.discard_round(round_index)

        record.decision = "promote" if decision.promote else "refuse"
        record.reason = decision.reason
        record.detail = decision.detail
        record.model_version = self.engine.model_version
        record.duration_s = float(time.monotonic() - started)
        self._emit_round(record)
        return record

    def run(self, rounds: int | None = None) -> OnlineLoopResult:
        """Run ``rounds`` rounds (default: the configured count)."""
        result = OnlineLoopResult(store_directory=self.store.directory)
        total = self.config.rounds if rounds is None else rounds
        for __ in range(total):
            record = self.run_round()
            result.rounds.append(record)
            if record.decision == "promote":
                result.promotions += 1
            else:
                result.refusals += 1
        result.final_model_version = self.engine.model_version
        return result
