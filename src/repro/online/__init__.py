"""Online learning: streaming ingestion → incremental fine-tuning →
shadow-evaluated live swap.

See docs/ONLINE_LEARNING.md for the architecture and the promotion-gate
semantics; ``repro online`` is the CLI entry point.
"""

from repro.online.buffer import ReplayBuffer
from repro.online.finetune import (
    FineTuneConfig,
    FineTuneRoundResult,
    IncrementalFineTuner,
)
from repro.online.loop import (
    OnlineLoop,
    OnlineLoopConfig,
    OnlineLoopResult,
    RoundRecord,
)
from repro.online.shadow import (
    GateConfig,
    GateDecision,
    PromotionGate,
    REFUSAL_REASONS,
    ShadowReport,
    shadow_evaluate,
)
from repro.online.stream import StreamBatch, StreamIngestor
from repro.online.versions import ModelVersionStore, VersionRecord

__all__ = [
    "FineTuneConfig",
    "FineTuneRoundResult",
    "GateConfig",
    "GateDecision",
    "IncrementalFineTuner",
    "ModelVersionStore",
    "OnlineLoop",
    "OnlineLoopConfig",
    "OnlineLoopResult",
    "PromotionGate",
    "REFUSAL_REASONS",
    "ReplayBuffer",
    "RoundRecord",
    "ShadowReport",
    "StreamBatch",
    "StreamIngestor",
    "VersionRecord",
    "shadow_evaluate",
]
