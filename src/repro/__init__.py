"""repro — a reproduction of CL4SRec (ICDE 2022).

"Contrastive Learning for Sequential Recommendation" — a SASRec-style
Transformer user-representation encoder trained with an NT-Xent
contrastive objective over three stochastic sequence augmentations
(crop / mask / reorder), plus the paper's complete baseline suite,
data pipeline, full-ranking evaluation protocol and experiment harness.

Quickstart
----------
>>> from repro import CL4SRec, CL4SRecConfig, evaluate_model, load_dataset
>>> dataset = load_dataset("beauty", scale=0.02, seed=0)
>>> model = CL4SRec(dataset, CL4SRecConfig(augmentations=("mask",), rates=0.5))
>>> model.fit(dataset, epochs=2)  # doctest: +SKIP
>>> evaluate_model(model, dataset).metrics  # doctest: +SKIP
"""

from repro.augment import (
    Compose,
    Crop,
    Identity,
    Insert,
    ItemCorrelation,
    Mask,
    PairSampler,
    Reorder,
    Substitute,
)
from repro.core import (
    CL4SRec,
    CL4SRecConfig,
    ContrastivePretrainConfig,
    JointTrainConfig,
    MoCoCL4SRec,
    MoCoConfig,
    ProjectionHead,
    info_nce_loss,
    nt_xent,
    pretrain_contrastive,
    train_joint,
)
from repro.data import (
    DATASETS,
    InteractionLog,
    SequenceDataset,
    SyntheticConfig,
    dataset_names,
    dataset_report,
    five_core_filter,
    generate_log,
    load_dataset,
    read_csv_log,
    read_jsonl_log,
    temporal_split,
)
from repro.eval import (
    EvaluationResult,
    Evaluator,
    evaluate_model,
    ranking_metrics,
    recommendation_diagnostics,
    top_k_indices,
)
from repro.runtime import (
    CheckpointError,
    CheckpointManager,
    DivergenceError,
    DivergenceGuard,
    FaultInjector,
    SimulatedPreemption,
    TrainingInterrupted,
    TrainingRuntime,
)
from repro.models import (
    BERT4Rec,
    BPRMF,
    Caser,
    FPMC,
    GRU4Rec,
    NCF,
    Pop,
    Recommender,
    SASRec,
    SASRecBPR,
    SASRecConfig,
    TrainConfig,
    available_models,
    build_model,
    register_model,
)
from repro.obs import (
    EventSink,
    Histogram,
    MetricsRegistry,
    Profiler,
    RunObserver,
    read_events,
    summarize_run,
)
from repro.serve import (
    Recommendation,
    RecommendationEngine,
    RecommendationServer,
    RecRequest,
    ServingMetrics,
)

__version__ = "1.0.0"

__all__ = [
    "BERT4Rec",
    "BPRMF",
    "CL4SRec",
    "CL4SRecConfig",
    "Caser",
    "CheckpointError",
    "CheckpointManager",
    "Compose",
    "ContrastivePretrainConfig",
    "Crop",
    "DATASETS",
    "DivergenceError",
    "DivergenceGuard",
    "EvaluationResult",
    "Evaluator",
    "EventSink",
    "FPMC",
    "FaultInjector",
    "GRU4Rec",
    "Histogram",
    "Identity",
    "Insert",
    "InteractionLog",
    "ItemCorrelation",
    "JointTrainConfig",
    "Mask",
    "MetricsRegistry",
    "MoCoCL4SRec",
    "MoCoConfig",
    "NCF",
    "PairSampler",
    "Pop",
    "Profiler",
    "ProjectionHead",
    "RecRequest",
    "Recommendation",
    "RecommendationEngine",
    "RecommendationServer",
    "Recommender",
    "Reorder",
    "RunObserver",
    "SASRec",
    "SASRecBPR",
    "SASRecConfig",
    "SequenceDataset",
    "ServingMetrics",
    "SimulatedPreemption",
    "Substitute",
    "SyntheticConfig",
    "TrainConfig",
    "TrainingInterrupted",
    "TrainingRuntime",
    "available_models",
    "build_model",
    "dataset_names",
    "dataset_report",
    "evaluate_model",
    "five_core_filter",
    "generate_log",
    "info_nce_loss",
    "load_dataset",
    "nt_xent",
    "pretrain_contrastive",
    "ranking_metrics",
    "read_csv_log",
    "read_events",
    "read_jsonl_log",
    "recommendation_diagnostics",
    "register_model",
    "summarize_run",
    "temporal_split",
    "top_k_indices",
    "train_joint",
]
