"""Command-line interface: regenerate any paper artifact from a shell.

Examples::

    python -m repro table1
    python -m repro table2 --datasets beauty toys --preset smoke
    python -m repro figure4 --dataset yelp --rates 0.1 0.5 0.9
    python -m repro figure6 --dataset beauty --output fig6.md
    python -m repro ablation --which temperature
    python -m repro train --dataset beauty --checkpoint-dir ckpts
    python -m repro train --dataset beauty --checkpoint-dir ckpts --resume
    python -m repro train --dataset beauty --obs-dir runs/beauty
    python -m repro stats runs/beauty
    python -m repro serve --checkpoint ckpts/joint --requests-file reqs.jsonl
    python -m repro serve --checkpoint ckpts/joint --port 8080
    python -m repro serve --checkpoint ckpts/joint --port 8080 \
        --deadline-ms 100 --max-inflight 32 --watch-checkpoints
    python -m repro recommend --checkpoint ckpts/joint --user 42 --k 10
    python -m repro chaos --checkpoint ckpts/joint
    python -m repro index --checkpoint ckpts/joint --index ivf_pq \
        --output items.idx.npz
    python -m repro serve --checkpoint ckpts/joint --port 8080 \
        --index-path items.idx.npz --nprobe 8 --rerank 200

``train`` runs CL4SRec under the fault-tolerant runtime: crash-safe
rotating checkpoints, SIGTERM/SIGINT flush-and-exit (exit code 3), and
``--resume`` to continue an interrupted run bit-for-bit.  See
``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import time

from repro.experiments.ablations import (
    run_joint_vs_pretrain,
    run_projection_ablation,
    run_temperature_ablation,
)
from repro.experiments.config import BENCH_SCALE, FULL_SCALE, SMOKE_SCALE, ExperimentScale
from repro.experiments.convergence import run_convergence
from repro.experiments.figure4 import PAPER_RATE_GRID, run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import PAPER_FRACTIONS, run_figure6
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2

PRESETS = {"smoke": SMOKE_SCALE, "bench": BENCH_SCALE, "full": FULL_SCALE}

#: Exit code of ``train`` when interrupted (checkpoint flushed; re-run
#: with ``--resume``).  Distinct from 0/1 so wrapper scripts can retry.
EXIT_INTERRUPTED = 3


def _scale_from_args(args: argparse.Namespace) -> ExperimentScale:
    scale = PRESETS[args.preset]
    overrides = {}
    for field in ("dataset_scale", "dim", "max_length", "epochs", "pretrain_epochs", "seed"):
        value = getattr(args, field, None)
        if value is not None:
            overrides[field] = value
    return scale.with_overrides(**overrides) if overrides else scale


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset",
        choices=sorted(PRESETS),
        default="smoke",
        help="scale preset (default: smoke)",
    )
    parser.add_argument("--dataset-scale", dest="dataset_scale", type=float)
    parser.add_argument("--dim", type=int)
    parser.add_argument("--max-length", dest="max_length", type=int)
    parser.add_argument("--epochs", type=int)
    parser.add_argument("--pretrain-epochs", dest="pretrain_epochs", type=int)
    parser.add_argument("--seed", type=int)
    parser.add_argument("--output", help="also write the markdown to this file")


def _add_serving_arguments(
    parser: argparse.ArgumentParser, checkpoint_required: bool = True
) -> None:
    """Flags shared by ``serve`` and ``recommend``: checkpoint + model."""
    parser.add_argument(
        "--checkpoint",
        required=checkpoint_required,
        help="checkpoint directory (newest valid archive) or .npz file",
    )
    parser.add_argument(
        "--model",
        default="CL4SRec",
        help="registered model name matching the checkpoint (default: CL4SRec)",
    )
    parser.add_argument("--dataset", default="beauty")
    parser.add_argument(
        "--preset",
        choices=sorted(PRESETS),
        default="smoke",
        help="scale preset the checkpoint was trained with (default: smoke)",
    )
    parser.add_argument("--dataset-scale", dest="dataset_scale", type=float)
    parser.add_argument("--dim", type=int)
    parser.add_argument("--max-length", dest="max_length", type=int)
    parser.add_argument("--seed", type=int)
    parser.add_argument(
        "--max-batch-size", dest="max_batch_size", type=int, default=256
    )
    parser.add_argument("--cache-size", dest="cache_size", type=int, default=4096)
    parser.add_argument(
        "--dtype",
        choices=["float32", "float64"],
        default=None,
        help="serving precision; default: adopt the checkpoint's dtype "
        "(float32 roughly doubles scoring throughput, see "
        "docs/PERFORMANCE.md)",
    )
    parser.add_argument(
        "--deadline-ms",
        dest="deadline_ms",
        type=float,
        default=None,
        help="default per-request latency budget; requests without their "
        "own deadline_ms degrade/504 past it (see docs/SERVING.md)",
    )
    parser.add_argument(
        "--no-resilience",
        dest="resilience",
        action="store_false",
        help="disable the resilience layer (deadlines, circuit breaker, "
        "degraded-mode fallback) — the PR-2 fail-hard behaviour",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="scoring worker processes; 0 (default) serves in-process on "
        "the single-process path, N shards the representation cache by "
        "user hash over N workers (docs/SCALING.md)",
    )
    _add_index_arguments(parser)


def _add_index_arguments(parser: argparse.ArgumentParser) -> None:
    """Retrieval-index knobs (docs/RETRIEVAL.md), shared with ``index``."""
    parser.add_argument(
        "--index",
        default="exact",
        help="retrieval index kind: exact (default, bit-identical dense "
        "path), ivf, ivf_pq or ivf_flat (see docs/RETRIEVAL.md)",
    )
    parser.add_argument(
        "--index-path",
        dest="index_path",
        default=None,
        help="load a prebuilt 'repro index' artifact (its kind wins over "
        "--index; verified against the live model's matrix)",
    )
    parser.add_argument(
        "--nprobe",
        type=int,
        default=None,
        help="IVF cells probed per query (exactness/latency knob)",
    )
    parser.add_argument(
        "--rerank",
        type=int,
        default=None,
        help="exact-rescore shortlist size for quantized indexes "
        "(default: max(10k, 100))",
    )
    parser.add_argument(
        "--nlist",
        type=int,
        default=None,
        help="IVF cell count (default: sqrt(num_items), clamped)",
    )
    parser.add_argument(
        "--pq-m",
        dest="pq_m",
        type=int,
        default=None,
        help="product-quantization subspaces; must divide the embedding "
        "dim (ivf_pq only, default: 8)",
    )


def _build_engine(args: argparse.Namespace, **overrides):
    """Dataset + model + checkpoint → a ready RecommendationEngine."""
    from repro.serve import ServeConfig

    return ServeConfig.from_args(args).build_engine(**overrides)


def _run_index(args: argparse.Namespace) -> int:
    """The ``index`` subcommand: build + save a retrieval artifact."""
    import json

    from repro.serve import ServeConfig

    config = ServeConfig.from_args(args)
    if config.index_path is not None:
        print("index: --index-path is an input of serve, not of index; "
              "use --output for the artifact destination", file=sys.stderr)
        return 2
    engine = config.build_engine(resilience=None)
    if engine.index is None:
        print(f"index: model {config.model!r} exposes no item embedding "
              f"matrix; nothing to index", file=sys.stderr)
        return 2
    matrix = engine.index.matrix
    started = time.time()
    index = config.build_index().build(matrix)
    built_in = time.time() - started
    path = index.save(args.output)
    stats = index.stats()
    stats["build_seconds"] = round(built_in, 3)
    stats["artifact"] = path
    stats["artifact_bytes"] = os.path.getsize(path)
    print(json.dumps(stats, indent=2, sort_keys=True))
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: batch-score a file or run HTTP."""
    import json

    from repro.serve import RecommendationServer, read_requests_file

    if (args.requests_file is None) == (args.port is None):
        print("serve: provide exactly one of --requests-file or --port",
              file=sys.stderr)
        return 2
    engine = _build_engine(args)

    if args.requests_file is not None:
        requests = read_requests_file(args.requests_file)
        results = engine.recommend_batch(requests)
        lines = [json.dumps(r.to_dict(), sort_keys=True) for r in results]
        if args.output:
            with open(args.output, "w") as handle:
                handle.write("\n".join(lines) + "\n")
            print(f"wrote {len(lines)} results to {args.output}")
        else:
            for line in lines:
                print(line)
        snapshot = engine.metrics.snapshot()
        print(
            f"served {len(results)} requests; cache hit rate "
            f"{snapshot['cache']['hit_rate']:.2f}; total p50 "
            f"{snapshot['latency']['total']['p50_ms']:.2f}ms",
            file=sys.stderr,
        )
        if args.metrics_output:
            with open(args.metrics_output, "w") as handle:
                handle.write(engine.metrics.to_json() + "\n")
            print(f"metrics written to {args.metrics_output}", file=sys.stderr)
        return 0

    server = RecommendationServer(
        engine, host=args.host, port=args.port, max_inflight=args.max_inflight
    )
    if args.watch_checkpoints:
        if not os.path.isdir(args.checkpoint):
            print(
                "serve: --watch-checkpoints needs --checkpoint to be a "
                "checkpoint directory, not a single archive",
                file=sys.stderr,
            )
            server.httpd.server_close()
            return 2
        server.watch_checkpoints(args.checkpoint, interval_s=args.watch_interval)
    host, port = server.address
    print(f"serving {args.model} on http://{host}:{port} "
          f"(POST /recommend, POST /admin/reload, GET /metrics, GET /health)")
    # SIGTERM must unwind through the finally below so a sharded pool
    # shuts its workers down and unlinks shared-memory segments.
    signal.signal(signal.SIGTERM, lambda signum, frame: sys.exit(0))
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        engine.close()
        if args.metrics_output:
            with open(args.metrics_output, "w") as handle:
                handle.write(engine.metrics.to_json() + "\n")
    return 0


def _run_loadtest(args: argparse.Namespace) -> int:
    """The ``loadtest`` subcommand: replay synthetic traffic, gate invariants.

    Targets a running server (``--url``) or self-hosts one from
    ``--checkpoint`` on an ephemeral port.  Exit status 1 means a
    serving invariant was violated (dropped responses, refusals outside
    the shed/deadline envelope, model_version regressions, metrics
    accounting drift) — see docs/SCALING.md.
    """
    import json
    import threading

    from repro.data.synthetic import synthesize_trace
    from repro.loadtest import LoadTestConfig, run_loadtest
    from repro.loadtest.harness import _get_json

    server = None
    engine = None
    if args.url:
        from urllib.parse import urlparse

        parsed = urlparse(args.url)
        if parsed.hostname is None or parsed.port is None:
            print("loadtest: --url must look like http://host:port",
                  file=sys.stderr)
            return 2
        host, port = parsed.hostname, parsed.port
        try:
            health = _get_json(host, port, "/health", args.timeout_s)
        except OSError as error:
            print(f"loadtest: cannot reach {args.url}: {error}",
                  file=sys.stderr)
            return 2
        user_pool = args.user_pool or health.get("num_users") or 1000
        num_items = args.num_items or health.get("num_items") or 500
    elif args.checkpoint:
        from repro.serve import RecommendationServer

        engine = _build_engine(args)
        server = RecommendationServer(
            engine, host="127.0.0.1", port=0, max_inflight=args.max_inflight
        )
        host, port = server.address
        threading.Thread(target=server.serve_forever, daemon=True).start()
        user_pool = args.user_pool or engine.dataset.num_users
        num_items = args.num_items or engine.dataset.num_items
    else:
        print("loadtest: provide --url (running server) or --checkpoint "
              "(self-hosted)", file=sys.stderr)
        return 2

    events = args.events if args.events is not None else (
        200 if args.quick else 10_000
    )
    trace = synthesize_trace(
        num_events=events,
        user_pool=user_pool,
        num_items=num_items,
        hot_users=min(args.hot_users, user_pool),
        hot_fraction=args.hot_fraction,
        batch_fraction=args.batch_fraction,
        k=args.k,
        seed=args.trace_seed,
    )
    config = LoadTestConfig(
        threads=args.threads,
        timeout_s=args.timeout_s,
        deadline_ms=args.request_deadline_ms,
        pace=args.pace,
        pace_speedup=args.pace_speedup,
    )
    try:
        result = run_loadtest(trace, host, port, config)
    finally:
        if server is not None:
            server.shutdown()
        if engine is not None:
            engine.close()
    report = result.report()
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"report written to {args.output}", file=sys.stderr)
    else:
        print(text)
    latency = report["latency"]
    print(
        f"loadtest: {report['events']} events, "
        f"{report['sequences_completed']} sequences, "
        f"{report['qps']:.1f} qps, p50 {latency['p50_ms']:.2f}ms, "
        f"p99 {latency['p99_ms']:.2f}ms — "
        f"{'OK' if result.ok else 'INVARIANT VIOLATIONS'}",
        file=sys.stderr,
    )
    for violation in result.violations:
        print(f"loadtest: VIOLATION: {violation}", file=sys.stderr)
    return 0 if result.ok else 1


def _run_chaos(args: argparse.Namespace) -> int:
    """The ``chaos`` subcommand: deterministic serving-chaos scenario.

    Builds an engine with a fast-recovery breaker and a shared
    :class:`FaultInjector`, starts a real HTTP server on a background
    thread, runs :func:`repro.serve.chaos.run_chaos` against it, and
    exits non-zero if any invariant failed.
    """
    import json
    import tempfile
    import threading

    from repro.runtime.faults import FaultInjector
    from repro.serve import (
        BreakerConfig,
        ChaosConfig,
        RecommendationServer,
        ResilienceConfig,
        run_chaos,
    )

    faults = FaultInjector(seed=args.seed or 0)
    resilience = ResilienceConfig(
        default_deadline_ms=args.deadline_ms,
        breaker=BreakerConfig(
            window=16,
            min_calls=4,
            failure_threshold=0.5,
            reset_timeout_s=1.0,
            half_open_probes=2,
        ),
    )
    engine = _build_engine(args, resilience=resilience, faults=faults)
    server = RecommendationServer(
        engine,
        host="127.0.0.1",
        port=args.port,
        max_inflight=args.max_inflight,
        retry_after_s=0.1,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    try:
        report = run_chaos(server, faults, workdir, ChaosConfig())
    finally:
        server.shutdown()
    print(report.to_markdown())
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    return 0 if report.ok else 1


def _run_online(args: argparse.Namespace) -> int:
    """The ``online`` subcommand: the streaming train/serve loop.

    Consumes a synthetic traffic trace round by round: fine-tunes the
    encoder incrementally on the replay buffer, shadow-evaluates the
    candidate against the currently serving weights on held-out stream
    traffic, and hot-swaps it into the engine only when the promotion
    gate passes (docs/ONLINE_LEARNING.md).  With ``--port`` a live
    HTTP server answers requests throughout, and promotions go through
    its serialized reload path.  Deterministic at fixed seeds: same
    ``--loop-seed``/``--trace-seed`` ⇒ same decisions and shadow
    metrics.  Exit status 1 means a promotion failed its swap
    self-check (infrastructure trouble, not a gate refusal).
    """
    import json
    import threading

    from repro.data.synthetic import synthesize_trace
    from repro.models.registry import build_model
    from repro.obs import RunObserver
    from repro.online import (
        FineTuneConfig,
        GateConfig,
        ModelVersionStore,
        OnlineLoop,
        OnlineLoopConfig,
    )
    from repro.online.shadow import REASON_SWAP_FAILED
    from repro.serve import ServeConfig

    config = ServeConfig.from_args(args)
    if config.workers:
        print(
            "online: the loop needs direct model access; ignoring "
            f"--workers {config.workers} (serving still answers live "
            "traffic on --port)",
            file=sys.stderr,
        )
        config.workers = 0
    engine = config.build_engine()
    dataset = engine.dataset
    trainer = build_model(config.model, dataset, config.scale())

    rounds = args.rounds
    trace_events = (
        args.trace_events
        if args.trace_events is not None
        else rounds * args.events_per_round
    )
    trace = synthesize_trace(
        num_events=trace_events,
        user_pool=dataset.num_users,
        num_items=dataset.num_items,
        hot_users=min(args.hot_users, dataset.num_users),
        batch_fraction=args.batch_fraction,
        k=args.shadow_k,
        seed=args.trace_seed,
    )

    round_checkpoint_dir = None
    if not args.no_round_checkpoints:
        round_checkpoint_dir = args.round_checkpoint_dir or os.path.join(
            args.store_dir, "rounds"
        )
    loop_config = OnlineLoopConfig(
        rounds=rounds,
        events_per_round=args.events_per_round,
        buffer_capacity=args.buffer_capacity,
        holdout_capacity=args.holdout_capacity,
        holdout_every=args.holdout_every,
        min_sequence_length=args.min_sequence_length,
        shadow_k=args.shadow_k,
        shadow_requests=args.shadow_requests,
        seed=args.loop_seed,
        gate=GateConfig(
            metrics=tuple(args.gate_metric or ("HR@10", "NDCG@10")),
            epsilon=args.gate_epsilon,
            min_shadow_users=args.min_shadow_users,
            min_new_sequences=args.min_new_sequences,
        ),
        finetune=FineTuneConfig(
            epochs_per_round=args.epochs_per_round,
            batch_size=args.train_batch_size,
            learning_rate=args.learning_rate,
            max_length=config.scale().max_length,
            cl_weight=args.cl_weight,
            pipeline=args.pipeline,
            workers=args.train_workers,
            checkpoint_dir=round_checkpoint_dir,
        ),
    )

    obs = None
    if args.obs_dir:
        obs = RunObserver.to_directory(
            args.obs_dir,
            meta={
                "command": "online",
                "rounds": rounds,
                "loop_seed": args.loop_seed,
                "trace_seed": args.trace_seed,
            },
        )

    server = None
    if args.port is not None:
        from repro.serve import RecommendationServer

        server = RecommendationServer(
            engine,
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
        )
        threading.Thread(target=server.serve_forever, daemon=True).start()
        host, port = server.address
        print(f"online: serving live traffic on http://{host}:{port}",
              file=sys.stderr)

    store = ModelVersionStore(args.store_dir, keep=args.store_keep)
    loop = OnlineLoop(
        engine, trainer, trace, store, loop_config, obs=obs, server=server
    )
    try:
        result = loop.run()
    finally:
        if server is not None:
            server.shutdown()
        engine.close()
        if obs is not None:
            obs.close()

    for record in result.rounds:
        deltas = (record.shadow or {}).get("deltas") or {}
        delta_text = " ".join(
            f"Δ{name}={deltas[name]:+.4f}"
            for name in loop_config.gate.metrics
            if name in deltas
        )
        print(
            f"online: round {record.round} → {record.decision.upper()} "
            f"({record.reason}) model_version={record.model_version} "
            f"buffer={record.buffer_depth} shadow_users={record.shadow_users}"
            + (f" {delta_text}" if delta_text else ""),
            file=sys.stderr,
        )
    print(
        f"online: {result.promotions} promoted, {result.refusals} refused "
        f"over {len(result.rounds)} rounds; serving model_version="
        f"{result.final_model_version}; versions in {store.directory}",
        file=sys.stderr,
    )
    text = json.dumps(result.to_dict(), indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"report written to {args.output}", file=sys.stderr)
    else:
        print(text)
    failed_swaps = any(
        record.reason == REASON_SWAP_FAILED for record in result.rounds
    )
    return 1 if failed_swaps else 0


def _run_recommend(args: argparse.Namespace) -> int:
    """The ``recommend`` subcommand: one request, JSON to stdout."""
    import json

    engine = _build_engine(args)
    result = engine.recommend(
        user=args.user,
        sequence=args.sequence,
        k=args.k,
        exclude_seen=args.exclude_seen,
    )
    print(json.dumps(result.to_dict(), sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CL4SRec reproduction — regenerate the paper's tables and figures",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_t1 = sub.add_parser("table1", help="dataset statistics (Table 1)")
    p_t1.add_argument("--scale", type=float, default=1.0)
    p_t1.add_argument("--seed", type=int, default=0)
    p_t1.add_argument("--output")

    p_t2 = sub.add_parser("table2", help="overall comparison (Table 2)")
    p_t2.add_argument(
        "--datasets", nargs="+", default=["beauty", "sports", "toys", "yelp"]
    )
    p_t2.add_argument(
        "--models",
        nargs="+",
        default=None,
        help="subset of methods (default: all seven)",
    )
    _add_scale_arguments(p_t2)

    p_f4 = sub.add_parser("figure4", help="augmentation sweep (Figure 4)")
    p_f4.add_argument("--dataset", default="beauty")
    p_f4.add_argument("--rates", nargs="+", type=float, default=list(PAPER_RATE_GRID))
    p_f4.add_argument(
        "--operators", nargs="+", default=["crop", "mask", "reorder"]
    )
    _add_scale_arguments(p_f4)

    p_f5 = sub.add_parser("figure5", help="composition study (Figure 5)")
    p_f5.add_argument("--dataset", default="beauty")
    _add_scale_arguments(p_f5)

    p_f6 = sub.add_parser("figure6", help="data sparsity (Figure 6)")
    p_f6.add_argument("--dataset", default="beauty")
    p_f6.add_argument(
        "--fractions", nargs="+", type=float, default=list(PAPER_FRACTIONS)
    )
    p_f6.add_argument("--gamma", type=float, default=0.5)
    _add_scale_arguments(p_f6)

    p_ab = sub.add_parser("ablation", help="extension ablations (E-A1..E-A3)")
    p_ab.add_argument(
        "--which",
        choices=["projection", "temperature", "joint"],
        default="projection",
    )
    p_ab.add_argument("--dataset", default="beauty")
    _add_scale_arguments(p_ab)

    p_cv = sub.add_parser(
        "convergence", help="warm-start convergence study (E-A4)"
    )
    p_cv.add_argument("--dataset", default="beauty")
    p_cv.add_argument("--bar-fraction", dest="bar_fraction", type=float, default=0.9)
    _add_scale_arguments(p_cv)

    p_tr = sub.add_parser(
        "train", help="fault-tolerant CL4SRec training (checkpoints + resume)"
    )
    p_tr.add_argument("--dataset", default="beauty")
    p_tr.add_argument(
        "--mode", choices=["joint", "pretrain_finetune"], default="joint"
    )
    p_tr.add_argument(
        "--checkpoint-dir",
        dest="checkpoint_dir",
        default="checkpoints",
        help="directory for rotating crash-safe checkpoints",
    )
    p_tr.add_argument(
        "--resume",
        action="store_true",
        help="continue from the newest valid checkpoint in --checkpoint-dir",
    )
    p_tr.add_argument(
        "--checkpoint-every",
        dest="checkpoint_every",
        type=int,
        default=1,
        help="checkpoint every N epochs (0 = only the final/interrupt flush)",
    )
    p_tr.add_argument(
        "--keep", type=int, default=3, help="checkpoints retained per stage"
    )
    p_tr.add_argument(
        "--no-guard",
        dest="guard",
        action="store_false",
        help="disable the NaN/divergence rollback guard",
    )
    p_tr.add_argument(
        "--track-dir",
        dest="track_dir",
        default=None,
        help="also record the run in this RunRegistry directory",
    )
    p_tr.add_argument(
        "--preempt-at",
        dest="preempt_at",
        type=int,
        default=None,
        help="inject a simulated preemption after N steps (fault testing)",
    )
    p_tr.add_argument(
        "--obs-dir",
        dest="obs_dir",
        default=None,
        help="write a structured obs.jsonl event stream (training, eval, "
        "checkpoint events) into this directory; summarize it later with "
        "'repro stats'",
    )
    p_tr.add_argument(
        "--profile",
        action="store_true",
        help="enable scoped nn profiling timers (matmul/attention/encoder); "
        "off by default — also enabled by REPRO_PROFILE=1",
    )
    p_tr.add_argument(
        "--pipeline",
        choices=["reference", "vectorized"],
        default="reference",
        help="batch-construction path: 'reference' (scalar, bit-compatible "
        "with the golden fixtures) or 'vectorized' (matrix-form augmentation "
        "+ background prefetch; see docs/PERFORMANCE.md)",
    )
    p_tr.add_argument(
        "--dtype",
        choices=["float32", "float64"],
        default=None,
        help="compute precision: float64 (default, bit-compatible with the "
        "golden fixtures) or float32 (roughly 2x BLAS throughput; see "
        "docs/PERFORMANCE.md)",
    )
    p_tr.add_argument(
        "--workers",
        type=int,
        default=0,
        help="data-parallel training workers: 0 (default) keeps the "
        "single-process loops byte-compatible with the golden fixtures; "
        "N >= 1 trains through repro.train.parallel — bit-reproducible "
        "at a fixed worker count (see docs/SCALING.md 'Training at scale')",
    )
    _add_scale_arguments(p_tr)

    p_st = sub.add_parser(
        "stats", help="summarize a run's obs.jsonl into terminal tables"
    )
    p_st.add_argument(
        "run_dir",
        help="run directory containing obs.jsonl (or a direct path to one)",
    )

    p_sv = sub.add_parser(
        "serve", help="serve top-k recommendations from a checkpoint"
    )
    _add_serving_arguments(p_sv)
    p_sv.add_argument(
        "--requests-file",
        dest="requests_file",
        help="JSONL request file to score in batch (mutually exclusive "
        "with --port)",
    )
    p_sv.add_argument(
        "--port",
        type=int,
        default=None,
        help="run an HTTP server on this port instead of batch mode",
    )
    p_sv.add_argument("--host", default="127.0.0.1")
    p_sv.add_argument(
        "--output", help="write batch results (JSONL) here instead of stdout"
    )
    p_sv.add_argument(
        "--metrics-output",
        dest="metrics_output",
        help="write the serving metrics snapshot (JSON) here on exit",
    )
    p_sv.add_argument(
        "--max-inflight",
        dest="max_inflight",
        type=int,
        default=64,
        help="admitted concurrent scoring requests before load shedding "
        "(HTTP 503 + Retry-After)",
    )
    p_sv.add_argument(
        "--watch-checkpoints",
        dest="watch_checkpoints",
        action="store_true",
        help="poll the --checkpoint directory and hot-reload newer steps "
        "(atomic swap with self-check and rollback)",
    )
    p_sv.add_argument(
        "--watch-interval",
        dest="watch_interval",
        type=float,
        default=2.0,
        help="checkpoint watcher poll interval in seconds (default: 2)",
    )

    p_lt = sub.add_parser(
        "loadtest",
        help="replay synthetic traffic against a server and gate the "
        "serving invariants (docs/SCALING.md)",
    )
    _add_serving_arguments(p_lt, checkpoint_required=False)
    p_lt.add_argument(
        "--url",
        default=None,
        help="target a running server (http://host:port); omit to "
        "self-host from --checkpoint on an ephemeral port",
    )
    p_lt.add_argument(
        "--events",
        type=int,
        default=None,
        help="trace events to replay (default: 10000, or 200 with --quick)",
    )
    p_lt.add_argument(
        "--quick",
        action="store_true",
        help="small smoke-sized trace (CI's loadtest-smoke job)",
    )
    p_lt.add_argument(
        "--threads", type=int, default=4,
        help="closed-loop client threads (default: 4)",
    )
    p_lt.add_argument(
        "--trace-seed", dest="trace_seed", type=int, default=0,
        help="traffic-trace seed (same seed ⇒ byte-identical trace)",
    )
    p_lt.add_argument(
        "--hot-users", dest="hot_users", type=int, default=200,
        help="Zipf head of returning users (default: 200)",
    )
    p_lt.add_argument(
        "--hot-fraction", dest="hot_fraction", type=float, default=0.6,
        help="probability a sequence belongs to a hot user (default: 0.6)",
    )
    p_lt.add_argument(
        "--batch-fraction", dest="batch_fraction", type=float, default=0.3,
        help="probability an event is a /recommend/batch call (default: 0.3)",
    )
    p_lt.add_argument(
        "--user-pool", dest="user_pool", type=int, default=None,
        help="hot-user id space (default: the server's num_users)",
    )
    p_lt.add_argument(
        "--num-items", dest="num_items", type=int, default=None,
        help="item-id space for cold sequences (default: the server's "
        "num_items)",
    )
    p_lt.add_argument("--k", type=int, default=10)
    p_lt.add_argument(
        "--request-deadline-ms", dest="request_deadline_ms", type=float,
        default=None,
        help="stamp this deadline budget onto every replayed payload",
    )
    p_lt.add_argument(
        "--timeout-s", dest="timeout_s", type=float, default=30.0,
        help="client HTTP timeout per request (default: 30)",
    )
    p_lt.add_argument(
        "--pace", action="store_true",
        help="open-loop replay honouring the trace's bursty arrival "
        "times instead of going flat out",
    )
    p_lt.add_argument(
        "--pace-speedup", dest="pace_speedup", type=float, default=1.0,
        help="divide arrival gaps by this factor under --pace",
    )
    p_lt.add_argument(
        "--max-inflight", dest="max_inflight", type=int, default=64,
        help="admission bound of the self-hosted server (ignored with "
        "--url)",
    )
    p_lt.add_argument("--output", help="write the JSON report here")

    p_on = sub.add_parser(
        "online",
        help="online learning loop: stream ingestion → incremental "
        "fine-tuning → shadow-gated live swap (docs/ONLINE_LEARNING.md)",
    )
    _add_serving_arguments(p_on)
    p_on.add_argument(
        "--rounds", type=int, default=1,
        help="ingest→train→gate→swap rounds to run (default: 1)",
    )
    p_on.add_argument(
        "--events-per-round", dest="events_per_round", type=int, default=200,
        help="traffic events consumed per round (default: 200)",
    )
    p_on.add_argument(
        "--trace-events", dest="trace_events", type=int, default=None,
        help="total trace length (default: rounds × events-per-round; "
        "shorter traces exhaust mid-loop and later rounds refuse with "
        "insufficient_data)",
    )
    p_on.add_argument(
        "--trace-seed", dest="trace_seed", type=int, default=0,
        help="traffic-trace seed (same seed ⇒ byte-identical stream)",
    )
    p_on.add_argument(
        "--loop-seed", dest="loop_seed", type=int, default=0,
        help="root seed of the per-round RNG spawn streams (default: 0)",
    )
    p_on.add_argument(
        "--hot-users", dest="hot_users", type=int, default=200,
        help="Zipf head of returning users in the trace (default: 200)",
    )
    p_on.add_argument(
        "--batch-fraction", dest="batch_fraction", type=float, default=0.3,
        help="probability a trace event is a batch call (default: 0.3)",
    )
    p_on.add_argument(
        "--store-dir", dest="store_dir", default="online-versions",
        help="ModelVersionStore directory: versioned checkpoints + the "
        "promote/refuse manifest (default: online-versions)",
    )
    p_on.add_argument(
        "--store-keep", dest="store_keep", type=int, default=8,
        help="version archives kept on disk; the manifest keeps every "
        "record (default: 8)",
    )
    p_on.add_argument(
        "--round-checkpoint-dir", dest="round_checkpoint_dir", default=None,
        help="TrainingRuntime checkpoints for mid-round crash recovery "
        "(default: <store-dir>/rounds)",
    )
    p_on.add_argument(
        "--no-round-checkpoints", dest="no_round_checkpoints",
        action="store_true",
        help="skip mid-round TrainingRuntime checkpoints",
    )
    p_on.add_argument(
        "--buffer-capacity", dest="buffer_capacity", type=int, default=2048,
        help="replay-buffer bound: most recent training sequences kept "
        "(default: 2048)",
    )
    p_on.add_argument(
        "--holdout-capacity", dest="holdout_capacity", type=int, default=512,
        help="shadow-holdout buffer bound (default: 512)",
    )
    p_on.add_argument(
        "--holdout-every", dest="holdout_every", type=int, default=4,
        help="every N-th ingested sequence feeds the shadow holdout "
        "instead of training (default: 4)",
    )
    p_on.add_argument(
        "--min-sequence-length", dest="min_sequence_length", type=int,
        default=3,
        help="drop streamed sequences shorter than this (default: 3)",
    )
    p_on.add_argument(
        "--epochs-per-round", dest="epochs_per_round", type=int, default=1,
        help="fine-tuning epochs over the replay buffer per round "
        "(default: 1)",
    )
    p_on.add_argument(
        "--train-batch-size", dest="train_batch_size", type=int, default=64,
        help="fine-tuning batch size (default: 64)",
    )
    p_on.add_argument(
        "--learning-rate", dest="learning_rate", type=float, default=5e-4,
        help="fine-tuning learning rate (default: 5e-4 — gentler than "
        "offline training, see docs/ONLINE_LEARNING.md)",
    )
    p_on.add_argument(
        "--cl-weight", dest="cl_weight", type=float, default=0.1,
        help="contrastive-loss weight λ during fine-tuning (default: 0.1)",
    )
    p_on.add_argument(
        "--pipeline", choices=["reference", "vectorized"],
        default="reference",
        help="batch-construction path for fine-tuning (docs/PERFORMANCE.md)",
    )
    p_on.add_argument(
        "--train-workers", dest="train_workers", type=int, default=0,
        help="data-parallel workers for each fine-tuning round (0 = "
        "single-process; --workers already names the serving pool — "
        "see docs/SCALING.md 'Training at scale')",
    )
    p_on.add_argument(
        "--gate-metric", dest="gate_metric", action="append", default=None,
        help="metric the promotion gate checks (repeatable; default: "
        "HR@10 and NDCG@10)",
    )
    p_on.add_argument(
        "--gate-epsilon", dest="gate_epsilon", type=float, default=0.0,
        help="tolerated per-metric regression: promote iff candidate >= "
        "baseline - epsilon on every gated metric (default: 0.0)",
    )
    p_on.add_argument(
        "--min-shadow-users", dest="min_shadow_users", type=int, default=8,
        help="held-out users required before shadow deltas count "
        "(default: 8)",
    )
    p_on.add_argument(
        "--min-new-sequences", dest="min_new_sequences", type=int, default=4,
        help="fresh training sequences a round must ingest, else it "
        "refuses with insufficient_data (default: 4)",
    )
    p_on.add_argument(
        "--shadow-requests", dest="shadow_requests", type=int, default=64,
        help="held-out sessions replayed through old-vs-new engines "
        "(default: 64)",
    )
    p_on.add_argument(
        "--shadow-k", dest="shadow_k", type=int, default=10,
        help="top-k width of the shadow replay leg (default: 10)",
    )
    p_on.add_argument(
        "--port", type=int, default=None,
        help="also serve live HTTP traffic during the loop; promotions "
        "then swap through the server's serialized reload path",
    )
    p_on.add_argument("--host", default="127.0.0.1")
    p_on.add_argument(
        "--max-inflight", dest="max_inflight", type=int, default=64,
        help="admission bound of the live server (with --port)",
    )
    p_on.add_argument(
        "--obs-dir", dest="obs_dir", default=None,
        help="write structured obs.jsonl events (online_round, "
        "shadow_eval, online_promote/online_refuse) here",
    )
    p_on.add_argument("--output", help="write the JSON loop report here")

    p_ch = sub.add_parser(
        "chaos",
        help="serving chaos scenario: faults, shedding, hot reload, recovery",
    )
    _add_serving_arguments(p_ch)
    p_ch.add_argument(
        "--port",
        type=int,
        default=0,
        help="port for the chaos target server (default: ephemeral)",
    )
    p_ch.add_argument(
        "--max-inflight",
        dest="max_inflight",
        type=int,
        default=2,
        help="admission bound of the chaos target (small, to force shedding)",
    )
    p_ch.add_argument(
        "--workdir",
        default=None,
        help="scratch directory for reload-phase checkpoint copies",
    )
    p_ch.add_argument("--output", help="also write the JSON report here")

    p_rc = sub.add_parser(
        "recommend", help="one-shot top-k recommendation from a checkpoint"
    )
    _add_serving_arguments(p_rc)
    group = p_rc.add_mutually_exclusive_group(required=True)
    group.add_argument("--user", type=int, help="dataset user id")
    group.add_argument(
        "--sequence", nargs="+", type=int, help="raw item-id history"
    )
    p_rc.add_argument("--k", type=int, default=10)
    p_rc.add_argument(
        "--include-seen",
        dest="exclude_seen",
        action="store_false",
        help="allow already-seen items in the top-k",
    )

    p_ix = sub.add_parser(
        "index",
        help="build a retrieval-index artifact (IVF/PQ) from a checkpoint",
    )
    _add_serving_arguments(p_ix)
    p_ix.add_argument(
        "--output",
        required=True,
        help="artifact destination (.npz); serve it with --index-path",
    )

    p_rp = sub.add_parser(
        "report", help="stitch benchmarks/results/*.md into one report"
    )
    p_rp.add_argument(
        "--results-dir",
        dest="results_dir",
        default=os.path.join("benchmarks", "results"),
    )
    p_rp.add_argument("--output", default="REPORT.md")

    return parser


def _run_train(args: argparse.Namespace) -> int:
    """The ``train`` subcommand: CL4SRec under the fault-tolerant runtime."""
    from repro.core.trainer import pretrain_contrastive, train_joint
    from repro.data.registry import load_dataset
    from repro.experiments.factory import build_model
    from repro.models.training import train_next_item_model
    from repro.runtime import (
        CheckpointManager,
        FaultInjector,
        TrainingInterrupted,
        TrainingRuntime,
    )

    scale = _scale_from_args(args)
    dataset = load_dataset(args.dataset, scale=scale.dataset_scale, seed=scale.seed)
    model = build_model("CL4SRec", dataset, scale, mode=args.mode)
    # Thread the batch-construction path into every stage config the
    # selected mode may run (joint, pretrain, supervised fine-tune).
    model.cl_config.joint.pipeline = args.pipeline
    model.cl_config.pretrain.pipeline = args.pipeline
    model.cl_config.sasrec.train.pipeline = args.pipeline
    # Same for the compute precision (None keeps the float64 default).
    model.cl_config.joint.dtype = args.dtype
    model.cl_config.pretrain.dtype = args.dtype
    model.cl_config.sasrec.train.dtype = args.dtype
    # And the data-parallel worker count (0 = single-process loops).
    model.cl_config.joint.workers = args.workers
    model.cl_config.pretrain.workers = args.workers
    model.cl_config.sasrec.train.workers = args.workers
    faults = None
    if args.preempt_at is not None:
        faults = FaultInjector().preempt(at=args.preempt_at)

    obs = None
    if args.obs_dir:
        from repro.obs import RunObserver

        obs = RunObserver.to_directory(
            args.obs_dir,
            meta={
                "command": "train",
                "dataset": args.dataset,
                "mode": args.mode,
                "pipeline": args.pipeline,
                "dtype": args.dtype or "float64",
                "workers": args.workers,
                "preset": args.preset,
                "seed": scale.seed,
            },
        )
    profiler = None
    if args.profile:
        from repro.obs import profiling

        profiler = profiling.enable()

    def runtime_for(stage: str) -> TrainingRuntime:
        manager = CheckpointManager(
            os.path.join(args.checkpoint_dir, stage), keep=args.keep
        )
        return TrainingRuntime(
            manager,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume,
            guard=args.guard,
            faults=faults,
            obs=obs,
        )

    started = time.time()
    try:
        try:
            if args.mode == "joint":
                runtime = runtime_for("joint")
                losses = train_joint(
                    model,
                    dataset,
                    model.cl_config.joint,
                    rng=model._rng,
                    runtime=runtime,
                    obs=obs,
                )
                final_loss = losses[-1] if losses else float("nan")
                stages = {"joint": runtime}
            else:
                pre_runtime = runtime_for("pretrain")
                model.pretrain_history = pretrain_contrastive(
                    model,
                    dataset,
                    model.cl_config.pretrain,
                    rng=model._rng,
                    runtime=pre_runtime,
                    obs=obs,
                )
                fine_runtime = runtime_for("finetune")
                history = train_next_item_model(
                    model,
                    dataset,
                    model.cl_config.sasrec.train,
                    rng=model._rng,
                    runtime=fine_runtime,
                    obs=obs,
                )
                final_loss = history.losses[-1] if history.losses else float("nan")
                stages = {"pretrain": pre_runtime, "finetune": fine_runtime}
        except TrainingInterrupted as interrupted:
            print(f"interrupted: {interrupted}")
            print(
                f"re-run with --resume --checkpoint-dir {args.checkpoint_dir} "
                "to continue"
            )
            return EXIT_INTERRUPTED

        if obs is not None:
            from repro.eval.evaluator import Evaluator

            evaluator = Evaluator(dataset, split="test")
            result = evaluator.evaluate(model, obs=obs)
            print(
                "test eval: "
                + ", ".join(
                    f"{name}={value:.4f}"
                    for name, value in sorted(result.metrics.items())
                )
            )
    finally:
        if profiler is not None:
            from repro.obs import profiling

            if obs is not None:
                obs.event("profile_summary", scopes=profiler.summary())
            profiling.disable()
        if obs is not None:
            obs.close()
            print(f"observability events written to {obs.sink.path}")

    duration = time.time() - started
    for stage, runtime in stages.items():
        resumed = (
            f"resumed from epoch {runtime.resumed_from}"
            if runtime.resumed_from is not None
            else "fresh start"
        )
        rollbacks = runtime.guard.total_rollbacks if runtime.guard else 0
        print(
            f"[{stage}] {resumed}; checkpoints in "
            f"{runtime.manager.directory} (keep={runtime.manager.keep}); "
            f"divergence rollbacks: {rollbacks}"
        )
        if runtime.write_failures:
            print(f"[{stage}] WARNING: {len(runtime.write_failures)} checkpoint "
                  f"write(s) failed: {runtime.write_failures[-1]}")
    print(f"final training loss: {final_loss:.4f} ({duration:.1f}s)")

    if args.track_dir:
        from repro.experiments.tracking import RunRegistry

        registry = RunRegistry(args.track_dir)
        record = registry.record(
            experiment=f"train-{args.dataset}",
            params={
                "dataset": args.dataset,
                "mode": args.mode,
                "preset": args.preset,
                "resumed": any(
                    r.resumed_from is not None for r in stages.values()
                ),
            },
            metrics={"final_loss": float(final_loss)},
            duration_seconds=duration,
        )
        print(f"recorded {record.run_id} in {args.track_dir}")
    return 0


def _run_stats(args: argparse.Namespace) -> int:
    """The ``stats`` subcommand: summarize a run's obs.jsonl."""
    from repro.obs import summarize_run

    try:
        print(summarize_run(args.run_dir))
    except FileNotFoundError as error:
        print(f"stats: {error}", file=sys.stderr)
        return 2
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    started = time.time()

    if args.command == "train":
        return _run_train(args)
    if args.command == "stats":
        return _run_stats(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "loadtest":
        return _run_loadtest(args)
    if args.command == "online":
        return _run_online(args)
    if args.command == "recommend":
        return _run_recommend(args)
    if args.command == "chaos":
        return _run_chaos(args)
    if args.command == "index":
        return _run_index(args)
    if args.command == "table1":
        result = run_table1(scale=args.scale, seed=args.seed)
    elif args.command == "table2":
        kwargs = {"datasets": tuple(args.datasets), "scale": _scale_from_args(args)}
        if args.models:
            kwargs["models"] = tuple(args.models)
        result = run_table2(**kwargs)
    elif args.command == "figure4":
        result = run_figure4(
            dataset_name=args.dataset,
            operators=tuple(args.operators),
            rates=tuple(args.rates),
            scale=_scale_from_args(args),
        )
    elif args.command == "figure5":
        result = run_figure5(dataset_name=args.dataset, scale=_scale_from_args(args))
    elif args.command == "figure6":
        result = run_figure6(
            dataset_name=args.dataset,
            fractions=tuple(args.fractions),
            scale=_scale_from_args(args),
            gamma=args.gamma,
        )
    elif args.command == "ablation":
        runner = {
            "projection": run_projection_ablation,
            "temperature": run_temperature_ablation,
            "joint": run_joint_vs_pretrain,
        }[args.which]
        result = runner(args.dataset, scale=_scale_from_args(args))
    elif args.command == "convergence":
        result = run_convergence(
            args.dataset,
            scale=_scale_from_args(args),
            bar_fraction=args.bar_fraction,
        )
    elif args.command == "report":
        from repro.experiments.report import build_report

        report = build_report(args.results_dir)
        report.write(args.output)
        print(f"wrote {args.output} ({len(report.included)} artifacts)")
        if report.missing:
            print(f"missing: {', '.join(report.missing)}")
        return 0
    else:  # pragma: no cover - argparse enforces choices
        raise SystemExit(2)

    markdown = result.to_markdown()
    print(markdown)
    print(f"\n(completed in {time.time() - started:.1f}s)")
    if getattr(args, "output", None):
        with open(args.output, "w") as handle:
            handle.write(markdown + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
